package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/kv"
	"reactdb/internal/occ"
	"reactdb/internal/rel"
	"reactdb/internal/vclock"
)

// coreSession tracks ownership of an executor's virtual core by the goroutine
// running one (sub-)transaction task. It is used by exactly one goroutine, so
// it needs no synchronization; the wait hooks of futures created by that
// goroutine run on the same goroutine inside Future.Get.
type coreSession struct {
	exec       *Executor
	acquiredAt time.Time
	held       bool
}

func (s *coreSession) acquire() {
	if s.held {
		return
	}
	s.acquiredAt = s.exec.acquire()
	s.held = true
}

func (s *coreSession) release() {
	if !s.held {
		return
	}
	s.exec.release(s.acquiredAt)
	s.held = false
}

// execContext implements core.Context for one (sub-)transaction executing on
// one reactor. Sub-transactions inlined on the same executor share the
// coreSession of their parent; sub-transactions dispatched to other containers
// get their own task, executor and session.
type execContext struct {
	db        *Database
	root      *rootTxn
	container *Container
	executor  *Executor
	session   *coreSession
	reactor   string
	catalog   *rel.Catalog
	txn       *occ.Txn
	children  []*core.Future
	rng       *rand.Rand
	// scratch is the context-cached key buffer for point operations; see
	// execContext.keyScratch in keybuf.go for the ownership rules.
	scratch *keyScratch
}

var _ core.Context = (*execContext)(nil)

// Reactor implements core.Context.
func (c *execContext) Reactor() string { return c.reactor }

// Rand implements core.Context. The source is seeded from the root transaction
// id and the reactor name so runs are reproducible given a fixed workload.
func (c *execContext) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(int64(c.root.id)*1_000_003 + int64(hashString(c.reactor))))
	}
	return c.rng
}

// Work implements core.Context: simulated CPU-bound processing on the
// executor's virtual core.
func (c *execContext) Work(d time.Duration) { vclock.Work(d) }

// Schema implements core.Context.
func (c *execContext) Schema(relation string) (*rel.Schema, error) {
	tbl, err := c.table(relation)
	if err != nil {
		return nil, err
	}
	return tbl.Schema(), nil
}

func (c *execContext) table(relation string) (*rel.Table, error) {
	tbl := c.catalog.Table(relation)
	if tbl == nil {
		return nil, fmt.Errorf("%w: %s on reactor %s", core.ErrUnknownRelation, relation, c.reactor)
	}
	return tbl, nil
}

// getRaw is the storage-level point read underneath Get: it builds the
// encoded key in pooled scratch, resolves the record, and returns the raw
// committed (or transaction-local) payload without decoding a row. The
// returned slice is the record's immutable payload (or an OCC-buffered write)
// and must not be mutated. It allocates nothing on the hit path — a pinned
// regression test holds it to 0 allocs/op.
func (c *execContext) getRaw(tbl *rel.Table, keyVals []any) ([]byte, bool, error) {
	s := c.keyScratch()
	key, err := tbl.Schema().AppendKeyPrefix(s.buf[:0], keyVals)
	if err != nil {
		return nil, false, err
	}
	rec := tbl.Get(key)
	s.buf = key[:0]
	if rec == nil {
		// Reading a missing key creates an anti-dependency on inserts of that
		// key; guard it with the table's structural version.
		if err := c.txn.RegisterScan(tbl); err != nil {
			return nil, false, err
		}
		return nil, false, nil
	}
	return c.txn.Read(rec)
}

// Get implements core.Context.
func (c *execContext) Get(relation string, keyVals ...any) (rel.Row, error) {
	tbl, err := c.table(relation)
	if err != nil {
		return nil, err
	}
	data, present, err := c.getRaw(tbl, keyVals)
	if err != nil || !present {
		return nil, err
	}
	return tbl.Schema().DecodeRow(data)
}

// GetView implements core.Context: the hit path allocates nothing — key
// encoding uses pooled scratch (getRaw) and the returned view decodes columns
// lazily from the record's payload in place.
func (c *execContext) GetView(relation string, keyVals ...any) (rel.RowView, bool, error) {
	tbl, err := c.table(relation)
	if err != nil {
		return rel.RowView{}, false, err
	}
	data, present, err := c.getRaw(tbl, keyVals)
	if err != nil || !present {
		return rel.RowView{}, false, err
	}
	return tbl.Schema().ViewRow(data), true, nil
}

// Insert implements core.Context.
func (c *execContext) Insert(relation string, row rel.Row) error {
	if c.db.cfg.replica {
		return ErrReplicaRead
	}
	tbl, err := c.table(relation)
	if err != nil {
		return err
	}
	data, err := tbl.Schema().EncodeRow(row)
	if err != nil {
		return err
	}
	s := c.keyScratch()
	key, err := tbl.Schema().AppendKey(s.buf[:0], row)
	if err != nil {
		return err
	}
	rec, _ := tbl.GetOrInsert(key)
	n := len(key)
	lk := appendLockKey(key, c.reactor, relation, key[:n])
	err = c.txn.Insert(rec, lk[n:], data, tbl)
	s.buf = lk[:0]
	if err != nil {
		if errors.Is(err, occ.ErrDuplicateKey) {
			// The key was committed by a concurrent transaction after this one
			// began (the serial-order insert would have succeeded); report a
			// serialization conflict so clients treat it as a retryable abort.
			return fmt.Errorf("%w: concurrent insert of the same key into %s.%s", ErrConflict, c.reactor, relation)
		}
		return err
	}
	return nil
}

// Update implements core.Context.
func (c *execContext) Update(relation string, row rel.Row) error {
	if c.db.cfg.replica {
		return ErrReplicaRead
	}
	tbl, err := c.table(relation)
	if err != nil {
		return err
	}
	data, err := tbl.Schema().EncodeRow(row)
	if err != nil {
		return err
	}
	s := c.keyScratch()
	key, err := tbl.Schema().AppendKey(s.buf[:0], row)
	if err != nil {
		return err
	}
	rec := tbl.Get(key)
	if rec == nil {
		s.buf = key[:0]
		return fmt.Errorf("%w: %s", core.ErrNoSuchRow, relation)
	}
	if _, present, err := c.txn.Read(rec); err != nil {
		s.buf = key[:0]
		return err
	} else if !present {
		s.buf = key[:0]
		return fmt.Errorf("%w: %s", core.ErrNoSuchRow, relation)
	}
	// Updates of indexed tables carry the table as their guard so the commit
	// install phase can move secondary-index entries under the structural
	// latch; unindexed updates stay guard-free (no structural change).
	var guard occ.ScanGuard
	if tbl.HasIndexes() {
		guard = tbl
	}
	n := len(key)
	lk := appendLockKey(key, c.reactor, relation, key[:n])
	err = c.txn.Write(rec, lk[n:], data, guard)
	s.buf = lk[:0]
	return err
}

// Delete implements core.Context.
func (c *execContext) Delete(relation string, keyVals ...any) error {
	if c.db.cfg.replica {
		return ErrReplicaRead
	}
	tbl, err := c.table(relation)
	if err != nil {
		return err
	}
	s := c.keyScratch()
	key, err := tbl.Schema().AppendKeyPrefix(s.buf[:0], keyVals)
	if err != nil {
		return err
	}
	rec := tbl.Get(key)
	if rec == nil {
		s.buf = key[:0]
		return fmt.Errorf("%w: %s", core.ErrNoSuchRow, relation)
	}
	if _, present, err := c.txn.Read(rec); err != nil {
		s.buf = key[:0]
		return err
	} else if !present {
		s.buf = key[:0]
		return fmt.Errorf("%w: %s", core.ErrNoSuchRow, relation)
	}
	n := len(key)
	lk := appendLockKey(key, c.reactor, relation, key[:n])
	err = c.txn.Delete(rec, lk[n:], tbl)
	s.buf = lk[:0]
	return err
}

// Scan implements core.Context.
func (c *execContext) Scan(relation string, fn func(row rel.Row) bool, prefixVals ...any) error {
	return c.scan(relation, fn, false, prefixVals...)
}

// ScanDesc implements core.Context.
func (c *execContext) ScanDesc(relation string, fn func(row rel.Row) bool, prefixVals ...any) error {
	return c.scan(relation, fn, true, prefixVals...)
}

func (c *execContext) scan(relation string, fn func(row rel.Row) bool, descending bool, prefixVals ...any) error {
	tbl, err := c.table(relation)
	if err != nil {
		return err
	}
	if err := c.txn.RegisterScan(tbl); err != nil {
		return err
	}
	// The prefix bounds live in pooled scratch held across the whole scan;
	// nested operations issued by fn draw their own buffers from the pool. The
	// exclusive upper bound is appended into the same buffer right after the
	// lower bound.
	s := getKeyScratch()
	buf := s.buf[:0]
	var lo, hi []byte
	if len(prefixVals) > 0 {
		buf, err = tbl.Schema().AppendKeyPrefix(buf, prefixVals)
		if err != nil {
			putKeyScratch(s, buf)
			return err
		}
		n := len(buf)
		var bounded bool
		buf, bounded = rel.AppendKeyPrefixSuccessor(buf, buf[:n])
		lo = buf[:n]
		if bounded {
			hi = buf[n:]
		}
	}
	defer putKeyScratch(s, buf)
	if descending {
		var iterErr error
		tbl.DescendRange(lo, hi, func(_ []byte, rec *kv.Record) bool {
			ok, err := c.visitRecord(tbl, rec, fn)
			if err != nil {
				iterErr = err
				return false
			}
			return ok
		})
		return iterErr
	}
	// Ascending scans run through a reusable cursor in slab-sized batches: one
	// tree latch acquisition per batch instead of one per scan, and the cursor
	// revalidates its position if fn's nested calls mutate the tree while the
	// task is blocked (cooperative multitasking).
	slab := getScanSlab()
	defer putScanSlab(slab)
	var cur kv.Cursor
	cur.Reset(tbl.Index(), lo, hi)
	for {
		n := cur.ScanBatch(slab.entries)
		if n == 0 {
			return nil
		}
		for i := 0; i < n; i++ {
			ok, err := c.visitRecord(tbl, slab.entries[i].Rec, fn)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}
}

// visitRecord reads one scanned record through the transaction, decodes it and
// hands it to the caller's row callback. Absent rows are skipped (ok without a
// callback). It reports whether the scan should continue.
func (c *execContext) visitRecord(tbl *rel.Table, rec *kv.Record, fn func(row rel.Row) bool) (bool, error) {
	data, present, err := c.txn.Read(rec)
	if err != nil {
		return false, err
	}
	if !present {
		return true, nil
	}
	row, err := tbl.Schema().DecodeRow(data)
	if err != nil {
		return false, err
	}
	return fn(row), nil
}

// SelectAll implements core.Context.
func (c *execContext) SelectAll(relation string, prefixVals ...any) ([]rel.Row, error) {
	var rows []rel.Row
	err := c.Scan(relation, func(row rel.Row) bool {
		rows = append(rows, row)
		return true
	}, prefixVals...)
	return rows, err
}

// CallSync implements core.Context.
func (c *execContext) CallSync(reactor, procedure string, args ...any) (any, error) {
	fut, err := c.Call(reactor, procedure, args...)
	if err != nil {
		return nil, err
	}
	return fut.Get()
}

// Call implements core.Context: the asynchronous procedure call of the
// programming model (§2.2.2). Calls to the current reactor are inlined; calls
// to reactors hosted in the same container execute synchronously on the
// calling executor (§3.2.1); calls to reactors in other containers are routed
// to the destination container and executed asynchronously, returning an
// unresolved future.
func (c *execContext) Call(reactor, procedure string, args ...any) (*core.Future, error) {
	typ := c.db.def.TypeOf(reactor)
	if typ == nil {
		return nil, fmt.Errorf("%w: %s", core.ErrUnknownReactor, reactor)
	}
	proc := typ.Procedure(procedure)
	if proc == nil {
		return nil, fmt.Errorf("%w: %s.%s", core.ErrUnknownProcedure, reactor, procedure)
	}
	callArgs := core.Args(args)

	// Direct self-call: inline synchronously (§2.2.4), sharing this context's
	// execution state.
	if reactor == c.reactor {
		res, err := c.runInline(c.container, reactor, proc, callArgs)
		return c.trackChild(core.ResolvedFuture(res, err)), nil
	}

	target := c.db.containerOf(reactor)
	cfg := &c.db.cfg

	// Same-container call: execute synchronously within the same transaction
	// executor to avoid migration of control (§3.2.1).
	if target == c.container && !cfg.DisableSameContainerInlining {
		if !cfg.DisableActiveSetCheck {
			if err := c.root.activeSet.Enter(reactor); err != nil {
				return nil, err
			}
			defer c.root.activeSet.Exit(reactor)
		}
		res, err := c.runInline(target, reactor, proc, callArgs)
		return c.trackChild(core.ResolvedFuture(res, err)), nil
	}

	// Cross-container call: enforce the safety condition, charge the send
	// cost, and dispatch to the destination container's router.
	if !cfg.DisableActiveSetCheck {
		if err := c.root.activeSet.Enter(reactor); err != nil {
			return nil, err
		}
	}
	if cfg.Costs.Send > 0 {
		vclock.Spin(cfg.Costs.Send)
	}
	c.root.addCs(cfg.Costs.Send)

	fut := core.NewFuture()
	c.installWaitHooks(fut)
	t := &task{
		root:     c.root,
		reactor:  reactor,
		procName: procedure,
		proc:     proc,
		args:     callArgs,
		executor: target.router.Route(reactor),
		future:   fut,
		isRoot:   false,
	}
	c.trackChild(fut)
	if err := c.db.dispatch(t); err != nil {
		// The request never reached an executor (queue closed mid-shutdown).
		// Resolve the tracked future so waitChildren observes the failure
		// instead of hanging, and undo the active-set entry the task's
		// completion would have removed.
		if !cfg.DisableActiveSetCheck {
			c.root.activeSet.Exit(reactor)
		}
		fut.Resolve(nil, err)
		return nil, err
	}
	return fut, nil
}

// trackChild records a child sub-transaction future so that waitChildren can
// enforce the completion rule and surface errors even when the application
// never synchronizes on the future (the paper's semantics: any abort in a
// sub-transaction aborts the root transaction).
func (c *execContext) trackChild(fut *core.Future) *core.Future {
	c.children = append(c.children, fut)
	return fut
}

// installWaitHooks wires cooperative multitasking and the receive cost (Cr)
// into a future returned for a cross-container call. The receive cost models
// the thread wake-up and switch on the caller's core when the caller actually
// has to block for the result; collecting a result that is already available
// costs nothing beyond reading memory, which is why asynchronous formulations
// largely overlap their receive costs (paper §4.2.1).
func (c *execContext) installWaitHooks(fut *core.Future) {
	cfg := &c.db.cfg
	blocked := false
	if !cfg.DisableCooperativeMultitasking {
		var blockedAt time.Time
		fut.SetWaitHooks(
			func() {
				blocked = true
				blockedAt = time.Now()
				c.session.release()
			},
			func() {
				c.session.acquire()
				c.root.addBlocked(time.Since(blockedAt))
			},
		)
	}
	fut.SetDeliverHook(func() {
		if !blocked {
			return
		}
		if cfg.Costs.Receive > 0 {
			vclock.Spin(cfg.Costs.Receive)
		}
		c.root.addCr(cfg.Costs.Receive)
	})
}

// runInline executes a sub-transaction synchronously on the calling executor,
// sharing the caller's core session and the container's OCC transaction.
func (c *execContext) runInline(container *Container, reactor string, proc core.Procedure, args core.Args) (any, error) {
	child := &execContext{
		db:        c.db,
		root:      c.root,
		container: container,
		executor:  c.executor,
		session:   c.session,
		reactor:   reactor,
		catalog:   container.catalog(reactor),
		txn:       c.root.txnFor(container),
	}
	if child.catalog == nil {
		return nil, fmt.Errorf("%w: %s not hosted in container %d", core.ErrUnknownReactor, reactor, container.id)
	}
	res, err := c.db.invoke(child, proc, args)
	if waitErr := child.waitChildren(); err == nil {
		err = waitErr
	}
	child.releaseScratch()
	return res, err
}

// waitChildren enforces the programming model's completion rule: a (sub-)
// transaction completes only when all sub-transactions invoked in its context
// complete. It returns the first error any child reported.
func (c *execContext) waitChildren() error {
	var firstErr error
	for _, fut := range c.children {
		if _, err := fut.Get(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.children = nil
	return firstErr
}

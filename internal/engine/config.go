package engine

import (
	"fmt"
	"hash/fnv"
	"time"

	"reactdb/internal/vclock"
	"reactdb/internal/wal"
)

// Strategy names the deployment strategies of §3.3. The strategy value is
// informational (experiments report it); the actual behaviour is fully
// determined by the other Config fields, which the constructors below set.
type Strategy string

// Deployment strategies evaluated in the paper.
const (
	// SharedEverythingWithoutAffinity (S1): a single container in which any
	// executor can handle transactions for any reactor; a round-robin router
	// load-balances root transactions across executors.
	SharedEverythingWithoutAffinity Strategy = "shared-everything-without-affinity"
	// SharedEverythingWithAffinity (S2): a single container with an
	// affinity-based router so that root transactions for a given reactor are
	// always processed by the same executor.
	SharedEverythingWithAffinity Strategy = "shared-everything-with-affinity"
	// SharedNothing (S3): as many containers as executors; each reactor is
	// mapped to exactly one executor. Whether the deployment behaves as
	// shared-nothing-sync or shared-nothing-async depends on how the
	// application program synchronizes on futures, not on the configuration.
	SharedNothing Strategy = "shared-nothing"
)

// RouterKind selects the transaction routing policy within a container.
type RouterKind string

// Router kinds.
const (
	RouterRoundRobin RouterKind = "round-robin"
	RouterAffinity   RouterKind = "affinity"
)

// DispatchMode selects how routed requests reach their executor.
type DispatchMode string

// Dispatch modes.
const (
	// DispatchQueued (the default) enqueues every request on the target
	// executor's bounded request queue; a per-executor run loop admits one
	// request at a time onto the executor's virtual core (paper §3.2.3:
	// executors queue requests and cooperatively multitask).
	DispatchQueued DispatchMode = "queued"
	// DispatchDirect runs every request on a fresh goroutine contending
	// directly for the executor core — the pre-scheduler behaviour, kept for
	// ablation benchmarks.
	DispatchDirect DispatchMode = "direct"
)

// AdmissionPolicy decides what happens to a root transaction arriving at an
// executor whose request queue is full.
type AdmissionPolicy string

// Admission policies.
const (
	// AdmissionBlock (the default) blocks the caller until queue space frees
	// up: backpressure propagates to clients.
	AdmissionBlock AdmissionPolicy = "block"
	// AdmissionFail rejects the request immediately with ErrOverloaded so
	// callers can shed load or retry elsewhere.
	AdmissionFail AdmissionPolicy = "fail-fast"
)

// StealConfig enables work stealing between the executors of a container:
// an executor whose run loop finds its own queue empty — or at least Ratio
// times shallower than the deepest sibling's — takes non-affine root tasks
// from the tail of that sibling's queue instead of idling next to a backlog.
//
// Only root tasks that are not pinned are ever stolen: when the deployment
// routes with the affinity router AND supplies an explicit Config.Affinity
// function, that mapping is treated as an application placement contract and
// its tasks never migrate. Hash-defaulted affinity and round-robin routing
// are load-spreading heuristics, so their tasks are fair game — each steal
// moves the reactor's working set, which the Costs.AffinityMiss model charges
// on the thief exactly as it charges any other routing miss, keeping the
// steal-on/steal-off ablation honest. Sub-transaction requests are never
// stolen.
type StealConfig struct {
	Enabled bool
	// Ratio is the imbalance trigger for a non-idle executor: it steals only
	// from a sibling whose queue is at least Ratio times deeper than its own
	// (default 2). An idle executor steals from any sibling at or above
	// MinVictimDepth.
	Ratio int
	// MinVictimDepth is the smallest sibling backlog worth raiding (default
	// 2): a single waiting request behind a busy executor is about to run
	// there anyway, and moving it would only pay the affinity miss.
	MinVictimDepth int
}

// AdaptiveDepthConfig enables the admission controller that moves each
// executor's effective queue depth (its in-flight token limit) between Floor
// and Ceiling in response to measured queue wait: when the windowed p99 of
// scheduling delay exceeds TargetP99 the depth halves (admitted requests wait
// less because fewer are admitted; the excess blocks or sheds at admission),
// and when p99 falls below half the target the depth creeps back up. With a
// static bound, overload pushes queue-wait p99 toward QueueDepth × service
// time; the controller trades that unbounded tail for backpressure at the
// admission gate.
type AdaptiveDepthConfig struct {
	Enabled bool
	// TargetP99 is the queue-wait p99 the controller holds admitted requests
	// under (default 2ms).
	TargetP99 time.Duration
	// Floor and Ceiling bound the effective depth (defaults 2 and
	// Config.QueueDepth).
	Floor   int
	Ceiling int
	// Interval is the control loop period; each tick reads and resets one
	// measurement window per executor (default 5ms).
	Interval time.Duration
}

// GroupCommitConfig enables batched group commit on each container: OCC
// transactions that validated successfully (Prepare) accumulate in a batch
// and are committed together when the batch reaches MaxBatch transactions or
// Window elapses, whichever comes first. The modeled log-write cost
// (Costs.LogWrite) is charged once per batch instead of once per transaction.
// Group commit applies to single-container commits; multi-container
// transactions keep the eager two-phase commit path.
type GroupCommitConfig struct {
	Enabled  bool
	MaxBatch int           // flush when this many transactions accumulated (default 32)
	Window   time.Duration // flush at least this often (default 200µs)
}

// DurabilityMode selects how a commit becomes durable before it is
// acknowledged.
type DurabilityMode string

// Durability modes.
const (
	// DurabilityModeled (the default) charges the modeled log-write cost
	// (Costs.LogWrite) as virtual-core work instead of doing real IO — the
	// original cost-model ablation. Nothing is recoverable.
	DurabilityModeled DurabilityMode = "modeled"
	// DurabilityWAL appends every committed transaction's write set to the
	// owning container's write-ahead log and fsyncs before the commit is
	// acknowledged. Group commit amortizes the fsync across a batch.
	// Database.Recover replays the log after a restart or crash.
	DurabilityWAL DurabilityMode = "wal"
)

// DurabilityConfig selects and parameterizes the durability implementation.
type DurabilityConfig struct {
	// Mode is the durability mode (default DurabilityModeled).
	Mode DurabilityMode
	// Dir, when set under DurabilityWAL, stores WAL segments as files under
	// this directory (one subdirectory per container). Empty means in-memory
	// segments, durable only for the lifetime of the Storage object.
	Dir string
	// Storage overrides Dir with an explicit segment store. Recovery tests
	// pass a wal.MemStorage here so the log outlives the Database instance.
	Storage wal.Storage
	// SegmentSize is the WAL segment rotation threshold in bytes
	// (default wal.DefaultSegmentSize).
	SegmentSize int
	// CheckpointInterval, when positive under DurabilityWAL, runs a
	// background checkpointer: every interval it snapshots each container's
	// committed catalog state into a durable checkpoint and truncates log
	// segments wholly below the checkpoint's low-water mark, bounding both
	// log size and recovery time. Zero disables the background checkpointer;
	// Database.Checkpoint still works on demand.
	CheckpointInterval time.Duration
	// CheckpointBytes, when positive, makes the background checkpointer skip
	// a tick unless at least this many bytes were appended across all
	// container logs since the last checkpoint, so an idle database is not
	// re-snapshotted. Zero checkpoints on every tick.
	CheckpointBytes int
}

// Config describes a ReactDB deployment: how many containers and executors to
// create, how reactors map to containers and executors, the routing policy,
// and the virtual-core cost parameters. Editing the configuration and
// restarting the database changes the architecture without any change to
// application code.
type Config struct {
	// Strategy is the deployment strategy this configuration realizes.
	Strategy Strategy

	// Containers is the number of database containers (isolated storage +
	// concurrency control domains).
	Containers int

	// ExecutorsPerContainer is the number of transaction executors (virtual
	// cores) in each container.
	ExecutorsPerContainer int

	// Router selects how a container routes incoming root transactions to its
	// executors.
	Router RouterKind

	// Dispatch selects how routed requests reach their executor: through the
	// executor's bounded request queue (DispatchQueued, the default) or on a
	// goroutine per request (DispatchDirect, the pre-scheduler behaviour).
	Dispatch DispatchMode

	// QueueDepth bounds the number of root transactions in flight on each
	// executor (default 256): an admission token is taken when a root is
	// admitted, held across cooperative yields, and released only at
	// completion, abort, or panic, so the bound covers waiting AND started
	// work — a true memory and tail-latency bound, not just a cap on the
	// waiting queue. Sub-transaction requests bypass it: rejecting them
	// mid-transaction could deadlock or abort work the system already
	// admitted. Under AdaptiveDepth the effective bound moves between the
	// configured floor and ceiling; QueueDepth is the static default.
	QueueDepth int

	// Admission selects the backpressure behaviour when an executor queue is
	// full: block the caller (AdmissionBlock, the default) or fail fast with
	// ErrOverloaded (AdmissionFail).
	Admission AdmissionPolicy

	// Steal configures work stealing between the executors of a container
	// (disabled by default).
	Steal StealConfig

	// AdaptiveDepth configures the adaptive admission controller that moves
	// the effective queue depth under overload (disabled by default: the
	// QueueDepth bound is static).
	AdaptiveDepth AdaptiveDepthConfig

	// GroupCommit configures batched group commit (disabled by default).
	GroupCommit GroupCommitConfig

	// Durability selects how commits become durable: the modeled log-write
	// cost (the default, an ablation) or a real per-container write-ahead
	// log with group fsync (see Database.Recover).
	Durability DurabilityConfig

	// Placement maps a reactor name to the index of the container hosting it.
	// The result is clamped into [0, Containers). If nil, reactors are
	// hash-partitioned across containers.
	Placement func(reactor string) int

	// Affinity maps a reactor name to the index of its preferred executor
	// within its container, used by the affinity router. The result is
	// clamped into [0, ExecutorsPerContainer). If nil, a hash of the reactor
	// name is used.
	Affinity func(reactor string) int

	// Costs are the virtual-core cost parameters (communication, affinity
	// miss, per-transaction processing). The zero value disables all modeled
	// costs, leaving only the real cost of executing Go code.
	Costs vclock.Costs

	// EpochInterval is how often each container advances its OCC epoch. Zero
	// disables epoch advancement (fine without durability).
	EpochInterval time.Duration

	// DisableCC disables the commit protocol (validation, locking, TID
	// generation). It exists only to measure containerization overhead with
	// empty transactions, as in Appendix F.3, and must not be used with
	// workloads that write data.
	DisableCC bool

	// DisableActiveSetCheck turns off the dynamic safety condition of §2.2.4.
	// Used by the ablation benchmarks.
	DisableActiveSetCheck bool

	// DisableSameContainerInlining forces sub-transaction calls to reactors in
	// the same container through the asynchronous dispatch path instead of
	// executing them synchronously on the calling executor. Used by the
	// ablation benchmarks; the default (false) matches the paper (§3.2.1).
	DisableSameContainerInlining bool

	// DisableCooperativeMultitasking keeps the executor core held while a
	// request waits for a remote sub-transaction result, i.e. the executor
	// cannot pick up other work during the wait. Used by ablation benchmarks;
	// the default (false) matches §3.2.3.
	DisableCooperativeMultitasking bool

	// replica marks the inner database of a Replica: procedures run read-only
	// (Insert/Update/Delete fail with ErrReplicaRead) while the replica's
	// apply loop installs the primary's writes underneath. Unexported on
	// purpose — only OpenReplica sets it.
	replica bool
}

// Validate checks the configuration and applies defaults for zero fields.
func (c *Config) Validate() error {
	if c.Containers <= 0 {
		c.Containers = 1
	}
	if c.ExecutorsPerContainer <= 0 {
		c.ExecutorsPerContainer = 1
	}
	if c.Router == "" {
		c.Router = RouterAffinity
	}
	if c.Router != RouterRoundRobin && c.Router != RouterAffinity {
		return fmt.Errorf("engine: unknown router kind %q", c.Router)
	}
	if c.Dispatch == "" {
		c.Dispatch = DispatchQueued
	}
	if c.Dispatch != DispatchQueued && c.Dispatch != DispatchDirect {
		return fmt.Errorf("engine: unknown dispatch mode %q", c.Dispatch)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Admission == "" {
		c.Admission = AdmissionBlock
	}
	if c.Admission != AdmissionBlock && c.Admission != AdmissionFail {
		return fmt.Errorf("engine: unknown admission policy %q", c.Admission)
	}
	if c.Steal.Enabled {
		if c.Dispatch != DispatchQueued {
			return fmt.Errorf("engine: work stealing requires Dispatch == DispatchQueued")
		}
		if c.Steal.Ratio <= 0 {
			c.Steal.Ratio = 2
		}
		if c.Steal.MinVictimDepth <= 0 {
			c.Steal.MinVictimDepth = 2
		}
	}
	if c.AdaptiveDepth.Enabled {
		if c.Dispatch != DispatchQueued {
			return fmt.Errorf("engine: adaptive queue depth requires Dispatch == DispatchQueued")
		}
		if c.AdaptiveDepth.TargetP99 <= 0 {
			c.AdaptiveDepth.TargetP99 = 2 * time.Millisecond
		}
		if c.AdaptiveDepth.Floor <= 0 {
			c.AdaptiveDepth.Floor = 2
		}
		if c.AdaptiveDepth.Ceiling <= 0 {
			c.AdaptiveDepth.Ceiling = c.QueueDepth
		}
		if c.AdaptiveDepth.Floor > c.AdaptiveDepth.Ceiling {
			return fmt.Errorf("engine: AdaptiveDepth.Floor %d exceeds Ceiling %d",
				c.AdaptiveDepth.Floor, c.AdaptiveDepth.Ceiling)
		}
		if c.AdaptiveDepth.Interval <= 0 {
			c.AdaptiveDepth.Interval = 5 * time.Millisecond
		}
	}
	if c.GroupCommit.Enabled {
		if c.GroupCommit.MaxBatch <= 0 {
			c.GroupCommit.MaxBatch = 32
		}
		if c.GroupCommit.Window <= 0 {
			c.GroupCommit.Window = 200 * time.Microsecond
		}
	}
	if c.Durability.Mode == "" {
		c.Durability.Mode = DurabilityModeled
	}
	if c.Durability.Mode != DurabilityModeled && c.Durability.Mode != DurabilityWAL {
		return fmt.Errorf("engine: unknown durability mode %q", c.Durability.Mode)
	}
	if c.Durability.Mode == DurabilityWAL {
		if c.Durability.Storage == nil {
			if c.Durability.Dir != "" {
				c.Durability.Storage = wal.NewFileStorage(c.Durability.Dir)
			} else {
				c.Durability.Storage = wal.NewMemStorage()
			}
		}
		if c.Durability.SegmentSize <= 0 {
			c.Durability.SegmentSize = wal.DefaultSegmentSize
		}
	}
	if c.Durability.Mode != DurabilityWAL && (c.Durability.CheckpointInterval > 0 || c.Durability.CheckpointBytes > 0) {
		return fmt.Errorf("engine: checkpointing requires Durability.Mode == DurabilityWAL")
	}
	if c.Strategy == "" {
		c.Strategy = Strategy(fmt.Sprintf("custom-%dx%d-%s", c.Containers, c.ExecutorsPerContainer, c.Router))
	}
	return nil
}

// hashString gives a stable non-negative hash for placement defaults.
func hashString(s string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return int(h.Sum32() & 0x7fffffff)
}

// placementFor resolves the container index for a reactor.
func (c *Config) placementFor(reactor string) int {
	idx := 0
	if c.Placement != nil {
		idx = c.Placement(reactor)
	} else {
		idx = hashString(reactor)
	}
	idx %= c.Containers
	if idx < 0 {
		idx += c.Containers
	}
	return idx
}

// DefaultAffinity returns the executor index the hash-defaulted affinity
// assigns to a reactor in a container with the given number of executors —
// the mapping used when Config.Affinity is nil. Benchmarks and experiment
// drivers use it to construct deliberately skewed (or deliberately balanced)
// reactor layouts without supplying an explicit Affinity function, which
// would pin the tasks and disable work stealing.
func DefaultAffinity(reactor string, executors int) int {
	if executors <= 0 {
		return 0
	}
	return hashString(reactor) % executors
}

// pinnedAffinity reports whether root tasks are pinned to their routed
// executor: the affinity router with an application-supplied Affinity
// function is a placement contract work stealing must not break, while the
// hash default and round-robin routing are load-spreading heuristics whose
// tasks may be stolen.
func (c *Config) pinnedAffinity() bool {
	return c.Router == RouterAffinity && c.Affinity != nil
}

// affinityFor resolves the preferred executor index for a reactor.
func (c *Config) affinityFor(reactor string) int {
	idx := 0
	if c.Affinity != nil {
		idx = c.Affinity(reactor)
	} else {
		idx = hashString(reactor)
	}
	idx %= c.ExecutorsPerContainer
	if idx < 0 {
		idx += c.ExecutorsPerContainer
	}
	return idx
}

// NewSharedEverythingWithoutAffinity returns the S1 deployment with the given
// number of transaction executors in a single container.
func NewSharedEverythingWithoutAffinity(executors int) Config {
	return Config{
		Strategy:              SharedEverythingWithoutAffinity,
		Containers:            1,
		ExecutorsPerContainer: executors,
		Router:                RouterRoundRobin,
	}
}

// NewSharedEverythingWithAffinity returns the S2 deployment with the given
// number of transaction executors in a single container.
func NewSharedEverythingWithAffinity(executors int) Config {
	return Config{
		Strategy:              SharedEverythingWithAffinity,
		Containers:            1,
		ExecutorsPerContainer: executors,
		Router:                RouterAffinity,
	}
}

// NewSharedNothing returns the S3 deployment with the given number of
// containers, one executor each.
func NewSharedNothing(containers int) Config {
	return Config{
		Strategy:              SharedNothing,
		Containers:            containers,
		ExecutorsPerContainer: 1,
		Router:                RouterAffinity,
	}
}

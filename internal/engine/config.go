package engine

import (
	"fmt"
	"hash/fnv"
	"time"

	"reactdb/internal/vclock"
)

// Strategy names the deployment strategies of §3.3. The strategy value is
// informational (experiments report it); the actual behaviour is fully
// determined by the other Config fields, which the constructors below set.
type Strategy string

// Deployment strategies evaluated in the paper.
const (
	// SharedEverythingWithoutAffinity (S1): a single container in which any
	// executor can handle transactions for any reactor; a round-robin router
	// load-balances root transactions across executors.
	SharedEverythingWithoutAffinity Strategy = "shared-everything-without-affinity"
	// SharedEverythingWithAffinity (S2): a single container with an
	// affinity-based router so that root transactions for a given reactor are
	// always processed by the same executor.
	SharedEverythingWithAffinity Strategy = "shared-everything-with-affinity"
	// SharedNothing (S3): as many containers as executors; each reactor is
	// mapped to exactly one executor. Whether the deployment behaves as
	// shared-nothing-sync or shared-nothing-async depends on how the
	// application program synchronizes on futures, not on the configuration.
	SharedNothing Strategy = "shared-nothing"
)

// RouterKind selects the transaction routing policy within a container.
type RouterKind string

// Router kinds.
const (
	RouterRoundRobin RouterKind = "round-robin"
	RouterAffinity   RouterKind = "affinity"
)

// Config describes a ReactDB deployment: how many containers and executors to
// create, how reactors map to containers and executors, the routing policy,
// and the virtual-core cost parameters. Editing the configuration and
// restarting the database changes the architecture without any change to
// application code.
type Config struct {
	// Strategy is the deployment strategy this configuration realizes.
	Strategy Strategy

	// Containers is the number of database containers (isolated storage +
	// concurrency control domains).
	Containers int

	// ExecutorsPerContainer is the number of transaction executors (virtual
	// cores) in each container.
	ExecutorsPerContainer int

	// Router selects how a container routes incoming root transactions to its
	// executors.
	Router RouterKind

	// Placement maps a reactor name to the index of the container hosting it.
	// The result is clamped into [0, Containers). If nil, reactors are
	// hash-partitioned across containers.
	Placement func(reactor string) int

	// Affinity maps a reactor name to the index of its preferred executor
	// within its container, used by the affinity router. The result is
	// clamped into [0, ExecutorsPerContainer). If nil, a hash of the reactor
	// name is used.
	Affinity func(reactor string) int

	// Costs are the virtual-core cost parameters (communication, affinity
	// miss, per-transaction processing). The zero value disables all modeled
	// costs, leaving only the real cost of executing Go code.
	Costs vclock.Costs

	// EpochInterval is how often each container advances its OCC epoch. Zero
	// disables epoch advancement (fine without durability).
	EpochInterval time.Duration

	// DisableCC disables the commit protocol (validation, locking, TID
	// generation). It exists only to measure containerization overhead with
	// empty transactions, as in Appendix F.3, and must not be used with
	// workloads that write data.
	DisableCC bool

	// DisableActiveSetCheck turns off the dynamic safety condition of §2.2.4.
	// Used by the ablation benchmarks.
	DisableActiveSetCheck bool

	// DisableSameContainerInlining forces sub-transaction calls to reactors in
	// the same container through the asynchronous dispatch path instead of
	// executing them synchronously on the calling executor. Used by the
	// ablation benchmarks; the default (false) matches the paper (§3.2.1).
	DisableSameContainerInlining bool

	// DisableCooperativeMultitasking keeps the executor core held while a
	// request waits for a remote sub-transaction result, i.e. the executor
	// cannot pick up other work during the wait. Used by ablation benchmarks;
	// the default (false) matches §3.2.3.
	DisableCooperativeMultitasking bool
}

// Validate checks the configuration and applies defaults for zero fields.
func (c *Config) Validate() error {
	if c.Containers <= 0 {
		c.Containers = 1
	}
	if c.ExecutorsPerContainer <= 0 {
		c.ExecutorsPerContainer = 1
	}
	if c.Router == "" {
		c.Router = RouterAffinity
	}
	if c.Router != RouterRoundRobin && c.Router != RouterAffinity {
		return fmt.Errorf("engine: unknown router kind %q", c.Router)
	}
	if c.Strategy == "" {
		c.Strategy = Strategy(fmt.Sprintf("custom-%dx%d-%s", c.Containers, c.ExecutorsPerContainer, c.Router))
	}
	return nil
}

// hashString gives a stable non-negative hash for placement defaults.
func hashString(s string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return int(h.Sum32() & 0x7fffffff)
}

// placementFor resolves the container index for a reactor.
func (c *Config) placementFor(reactor string) int {
	idx := 0
	if c.Placement != nil {
		idx = c.Placement(reactor)
	} else {
		idx = hashString(reactor)
	}
	idx %= c.Containers
	if idx < 0 {
		idx += c.Containers
	}
	return idx
}

// affinityFor resolves the preferred executor index for a reactor.
func (c *Config) affinityFor(reactor string) int {
	idx := 0
	if c.Affinity != nil {
		idx = c.Affinity(reactor)
	} else {
		idx = hashString(reactor)
	}
	idx %= c.ExecutorsPerContainer
	if idx < 0 {
		idx += c.ExecutorsPerContainer
	}
	return idx
}

// NewSharedEverythingWithoutAffinity returns the S1 deployment with the given
// number of transaction executors in a single container.
func NewSharedEverythingWithoutAffinity(executors int) Config {
	return Config{
		Strategy:              SharedEverythingWithoutAffinity,
		Containers:            1,
		ExecutorsPerContainer: executors,
		Router:                RouterRoundRobin,
	}
}

// NewSharedEverythingWithAffinity returns the S2 deployment with the given
// number of transaction executors in a single container.
func NewSharedEverythingWithAffinity(executors int) Config {
	return Config{
		Strategy:              SharedEverythingWithAffinity,
		Containers:            1,
		ExecutorsPerContainer: executors,
		Router:                RouterAffinity,
	}
}

// NewSharedNothing returns the S3 deployment with the given number of
// containers, one executor each.
func NewSharedNothing(containers int) Config {
	return Config{
		Strategy:              SharedNothing,
		Containers:            containers,
		ExecutorsPerContainer: 1,
		Router:                RouterAffinity,
	}
}

package engine

import (
	"fmt"

	"reactdb/internal/core"
	"reactdb/internal/rel"
	"reactdb/internal/vclock"
)

// Query runs a declarative read-only query as its own root transaction: the
// ad-hoc entry point of the query layer (procedures use Context.Query
// instead, inside their own transaction). Every source must name the reactors
// it reads — there is no "current reactor" outside a procedure. The root is
// hosted on the first source's first reactor; remote sources fan out as read
// sub-transactions over the same future machinery as procedure calls, and the
// commit protocol validates the read and scan sets, so results are
// serializable with every concurrent writer.
func (db *Database) Query(q *rel.Query) (*rel.Result, error) {
	if err := q.Err(); err != nil {
		return nil, err
	}
	srcs := q.Sources()
	if len(srcs) == 0 {
		return nil, fmt.Errorf("engine: query declares no sources")
	}
	for _, s := range srcs {
		if len(s.Reactors) == 0 {
			return nil, fmt.Errorf("engine: query source %q names no reactors (only Context.Query has a current reactor)", s.Alias)
		}
	}
	home := srcs[0].Reactors[0]
	container := db.containerOf(home)
	if container == nil {
		return nil, fmt.Errorf("%w: %s", core.ErrUnknownReactor, home)
	}
	root := newRootTxn(db, db.nextTxnID.Add(1))
	if !db.cfg.DisableActiveSetCheck {
		if err := root.activeSet.Enter(home); err != nil {
			return nil, err
		}
	}
	fut := core.NewFuture()
	t := &task{
		root:     root,
		reactor:  home,
		procName: "query",
		proc: func(ctx core.Context, _ core.Args) (any, error) {
			return ctx.Query(q)
		},
		executor: container.router.Route(home),
		future:   fut,
		isRoot:   true,
		affine:   db.cfg.pinnedAffinity(),
	}
	db.inflight.Add(1)
	if err := db.dispatch(t); err != nil {
		db.inflight.Done()
		return nil, err
	}
	res, err := fut.Get()
	db.inflight.Done()
	if err != nil {
		return nil, err
	}
	return res.(*rel.Result), nil
}

// Query implements core.Context: it executes the query inside the current
// root transaction. Sources with no explicit reactors read the current
// reactor; sources naming reactors in other containers are fetched through
// dispatched read sub-transactions exactly like Call, overlapping their
// communication.
func (c *execContext) Query(q *rel.Query) (*rel.Result, error) {
	return q.Execute(c.fetchLeaf)
}

// fetchLeaf materializes one query source: the union of the relation's rows
// across the source's reactors, narrowed by the best access path the filters
// admit. Remote reactors are dispatched first so their scans overlap; local
// reactors are read inline.
func (c *execContext) fetchLeaf(src rel.Source, filters []rel.Filter) (*rel.LeafBatch, error) {
	reactors := src.Reactors
	if len(reactors) == 0 {
		reactors = []string{c.reactor}
	}
	cfg := &c.db.cfg

	type remote struct {
		reactor string
		fut     *core.Future
	}
	var remotes []remote
	var locals []string

	for _, r := range reactors {
		if r == c.reactor {
			locals = append(locals, r)
			continue
		}
		if !c.db.def.HasReactor(r) {
			return nil, fmt.Errorf("%w: %s", core.ErrUnknownReactor, r)
		}
		target := c.db.containerOf(r)
		if target == c.container && !cfg.DisableSameContainerInlining {
			locals = append(locals, r)
			continue
		}
		// Cross-container read sub-transaction: same dispatch discipline as
		// Call — safety condition, send cost, routed task, tracked future.
		if !cfg.DisableActiveSetCheck {
			if err := c.root.activeSet.Enter(r); err != nil {
				return nil, err
			}
		}
		if cfg.Costs.Send > 0 {
			vclock.Spin(cfg.Costs.Send)
		}
		c.root.addCs(cfg.Costs.Send)
		fut := core.NewFuture()
		c.installWaitHooks(fut)
		relation, flt := src.Relation, filters
		t := &task{
			root:     c.root,
			reactor:  r,
			procName: "query.scan",
			proc: func(ctx core.Context, _ core.Args) (any, error) {
				return ctx.(*execContext).fetchLocal(relation, flt)
			},
			executor: target.router.Route(r),
			future:   fut,
			isRoot:   false,
		}
		c.trackChild(fut)
		if err := c.db.dispatch(t); err != nil {
			if !cfg.DisableActiveSetCheck {
				c.root.activeSet.Exit(r)
			}
			fut.Resolve(nil, err)
			return nil, err
		}
		remotes = append(remotes, remote{reactor: r, fut: fut})
	}

	batch := &rel.LeafBatch{}
	merge := func(part *rel.LeafBatch) {
		if batch.Schema == nil {
			batch.Schema = part.Schema
		}
		batch.Rows = append(batch.Rows, part.Rows...)
		switch {
		case batch.Path == "":
			batch.Path = part.Path
		case batch.Path != part.Path:
			batch.Path = "mixed"
		}
	}

	for _, r := range locals {
		part, err := c.fetchLocalOn(r, src.Relation, filters)
		if err != nil {
			return nil, err
		}
		merge(part)
	}
	for _, rm := range remotes {
		res, err := rm.fut.Get()
		if err != nil {
			return nil, err
		}
		merge(res.(*rel.LeafBatch))
	}
	if batch.Schema == nil {
		// No reactor contributed (empty source list can't happen; defensive).
		return nil, fmt.Errorf("engine: query source %q resolved no reactors", src.Alias)
	}
	return batch, nil
}

// fetchLocalOn reads one reactor's relation from within the current container
// (the current reactor itself, or a same-container sibling inlined like a
// same-container Call).
func (c *execContext) fetchLocalOn(reactor, relation string, filters []rel.Filter) (*rel.LeafBatch, error) {
	if reactor == c.reactor {
		return c.fetchLocal(relation, filters)
	}
	cfg := &c.db.cfg
	if !cfg.DisableActiveSetCheck {
		if err := c.root.activeSet.Enter(reactor); err != nil {
			return nil, err
		}
		defer c.root.activeSet.Exit(reactor)
	}
	target := c.db.containerOf(reactor)
	child := &execContext{
		db:        c.db,
		root:      c.root,
		container: target,
		executor:  c.executor,
		session:   c.session,
		reactor:   reactor,
		catalog:   target.catalog(reactor),
		txn:       c.root.txnFor(target),
	}
	if child.catalog == nil {
		return nil, fmt.Errorf("%w: %s not hosted in container %d", core.ErrUnknownReactor, reactor, target.id)
	}
	batch, err := child.fetchLocal(relation, filters)
	child.releaseScratch()
	return batch, err
}

// fetchLocal reads the current reactor's relation under the cheapest access
// path the equality filters admit: a primary-key prefix scan, a secondary-
// index prefix scan, or a full scan. Residual predicates are always
// re-applied by the query layer, so overselection is harmless; underselection
// is impossible because a path is only chosen when its prefix columns are
// all bound by equality.
func (c *execContext) fetchLocal(relation string, filters []rel.Filter) (*rel.LeafBatch, error) {
	tbl, err := c.table(relation)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()

	// Columns bound by equality predicates.
	eq := make(map[int]any)
	for _, f := range filters {
		if f.Op != rel.Eq {
			continue
		}
		if ci := schema.Col(f.Col); ci >= 0 {
			if _, dup := eq[ci]; !dup {
				eq[ci] = f.Value
			}
		}
	}

	// Longest primary-key prefix covered.
	var pkVals []any
	for _, ki := range schema.KeyColumns() {
		v, ok := eq[ki]
		if !ok {
			break
		}
		pkVals = append(pkVals, v)
	}

	// Longest-covered secondary index.
	bestIdx, bestLen := -1, 0
	for pos, ix := range schema.Indexes() {
		n := 0
		for _, ci := range ix.ColumnIndices() {
			if _, ok := eq[ci]; !ok {
				break
			}
			n++
		}
		if n > bestLen {
			bestIdx, bestLen = pos, n
		}
	}

	switch {
	case len(pkVals) > 0 && len(pkVals) >= bestLen:
		rows, err := c.SelectAll(relation, pkVals...)
		if err != nil {
			return nil, err
		}
		return &rel.LeafBatch{Schema: schema, Rows: rows, Path: "pk-prefix"}, nil
	case bestIdx >= 0:
		ix := schema.Indexes()[bestIdx]
		vals := make([]any, 0, bestLen)
		for _, ci := range ix.ColumnIndices()[:bestLen] {
			vals = append(vals, eq[ci])
		}
		rows, err := c.indexScan(tbl, bestIdx, vals)
		if err != nil {
			return nil, err
		}
		return &rel.LeafBatch{Schema: schema, Rows: rows, Path: "index:" + ix.Name()}, nil
	default:
		rows, err := c.SelectAll(relation)
		if err != nil {
			return nil, err
		}
		return &rel.LeafBatch{Schema: schema, Rows: rows, Path: "scan"}, nil
	}
}

// indexScan reads the rows whose secondary-index entries match the given
// prefix values. The table is registered for phantom validation (any
// committed write that adds, removes or moves an index entry bumps the
// structural version), every candidate row is read transactionally through
// its primary record, and the transaction's own buffered writes — which are
// not in the index until commit — are overlaid afterwards. Overselection
// (candidates whose current value no longer matches, buffered rows outside
// the prefix) is corrected by the query layer's residual filters.
func (c *execContext) indexScan(tbl *rel.Table, pos int, prefixVals []any) ([]rel.Row, error) {
	schema := tbl.Schema()
	ix := schema.Indexes()[pos]
	s := getKeyScratch()
	prefix, err := schema.AppendIndexPrefix(s.buf[:0], ix, prefixVals)
	if err != nil {
		putKeyScratch(s, s.buf)
		return nil, err
	}
	if err := c.txn.RegisterScan(tbl); err != nil {
		putKeyScratch(s, prefix)
		return nil, err
	}
	// Primary keys collected here are the entry records' immutable payloads —
	// stable slices, referenced without copying.
	var pks [][]byte
	tbl.AscendIndexPrefix(pos, prefix, func(pk []byte) bool {
		pks = append(pks, pk)
		return true
	})
	putKeyScratch(s, prefix)
	seen := make(map[string]bool, len(pks))
	var rows []rel.Row
	for _, pk := range pks {
		rec := tbl.Get(pk)
		if rec == nil {
			continue
		}
		data, present, err := c.txn.Read(rec)
		if err != nil {
			return nil, err
		}
		seen[string(pk)] = true
		if !present {
			continue
		}
		row, err := schema.DecodeRow(data)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	// Overlay buffered inserts and updates of this transaction: rows it wrote
	// are visible to its own scans even though their index entries install
	// only at commit.
	var overlayErr error
	c.txn.EachPendingWrite(tbl, func(_ []byte, data []byte, deleted bool) {
		if overlayErr != nil || deleted || data == nil {
			return
		}
		row, err := schema.DecodeRow(data)
		if err != nil {
			overlayErr = err
			return
		}
		pk, err := schema.KeyOf(row)
		if err != nil {
			overlayErr = err
			return
		}
		if seen[pk] {
			return
		}
		seen[pk] = true
		rows = append(rows, row)
	})
	return rows, overlayErr
}

package engine

import (
	"errors"
	"fmt"
	"time"

	"reactdb/internal/kv"
	"reactdb/internal/wal"
)

// This file is the fuzzy checkpointer: it snapshots each container's
// committed catalog state into a durable wal.Checkpoint and truncates log
// segments wholly below the snapshot's low-water mark, bounding log growth
// and turning recovery from O(history) replay into "install snapshot, replay
// suffix".
//
// The fuzzy protocol hinges on one short quiesce: every root transaction's
// commit protocol — from its first WAL append to its last in-memory install,
// including 2PC prepare/decision forcing and failure retractions — runs under
// db.commitGate.RLock (see Database.runTask). Checkpoint takes the write
// lock for just long enough to read each log's last assigned LSN and the
// transaction-id watermarks. At that instant no transaction sits between
// "appended" and "installed", so every record at or below the observed LSN
// has its effects in memory, and every multi-container transaction with any
// record at or below it is fully resolved on all participants (its records
// were all appended before the quiesce, hence all below their logs' marks —
// prepares, decision and any retractions truncate together). The snapshot
// itself then runs concurrently with new commits: rows are read atomically
// one at a time (StableRead), and anything newer that leaks in is harmless
// because suffix replay is idempotent, newest TID wins.

// errCheckpointClosed is returned by Checkpoint on a closed database.
var errCheckpointClosed = errors.New("engine: checkpoint on closed database")

// checkpointCounters is one container's checkpoint accounting (guarded by
// Container.ckptMu).
type checkpointCounters struct {
	checkpoints     uint64
	lastLowLSN      uint64
	lastRows        int
	lastBytes       int
	segmentsDeleted uint64
	restoredRows    int
	corruptSkipped  int
}

// Checkpoint takes one fuzzy checkpoint of every container and truncates each
// container's log below its snapshot's low-water mark. It is safe to call
// concurrently with a running workload (commits stall only for the
// microsecond-scale quiesce read) and is a no-op under durability modes
// without a WAL. The background checkpointer (Durability.CheckpointInterval)
// calls it on a timer; on-demand callers use it before a planned shutdown to
// make the next recovery near-instant.
func (db *Database) Checkpoint() error {
	if db.cfg.Durability.Mode != DurabilityWAL {
		return nil
	}
	if db.closed.Load() {
		return errCheckpointClosed
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	// Quiesce: with the commit gate held exclusively, no commit protocol is
	// in flight, so each log's last LSN is an exact "everything at or below
	// is installed and resolved" mark. Only cheap in-memory reads happen
	// under the gate.
	type mark struct {
		lowLSN uint64
		maxTID uint64
	}
	marks := make([]mark, len(db.containers))
	db.commitGate.Lock()
	for i, c := range db.containers {
		if c.wal == nil {
			continue
		}
		marks[i] = mark{lowLSN: c.wal.LastLSN(), maxTID: c.domain.TIDWatermark()}
	}
	maxGid := db.nextTxnID.Load()
	db.commitGate.Unlock()

	// Phase one: snapshot and durably write EVERY container's checkpoint.
	// Phase two — truncation — starts only after all writes succeeded.
	// The round must be two-phased because 2PC decision records live only
	// on the coordinator's log: if the coordinator truncated its round-N
	// segments while a participant's round-N checkpoint never became
	// durable, a crash would recover the participant at round N-1, replay a
	// prepare whose decision the coordinator just deleted, and presume-abort
	// a committed transaction. With the barrier, recovering containers can
	// only disagree about rounds whose truncation never ran, and then every
	// decision a replayed prepare needs is still in some log.
	for i, c := range db.containers {
		if c.wal == nil {
			continue
		}
		if err := c.writeCheckpoint(marks[i].lowLSN, marks[i].maxTID, maxGid); err != nil {
			return fmt.Errorf("engine: checkpoint container %d: %w", c.id, err)
		}
	}
	for _, c := range db.containers {
		if c.wal == nil {
			continue
		}
		if err := c.truncateCheckpointed(); err != nil {
			return fmt.Errorf("engine: checkpoint container %d: truncate: %w", c.id, err)
		}
	}
	return nil
}

// writeCheckpoint snapshots this container's catalogs and writes the
// checkpoint durably. Truncation is deliberately not part of it — see the
// round barrier in Database.Checkpoint.
func (c *Container) writeCheckpoint(lowLSN, maxTID, maxGid uint64) error {
	c.ckptMu.Lock()
	seq := c.ckptSeq + 1
	c.ckptMu.Unlock()

	cp := &wal.Checkpoint{
		Seq:         seq,
		LowLSN:      lowLSN,
		MaxTID:      maxTID,
		MaxGlobalID: maxGid,
		Rows:        c.snapshotRows(),
	}
	// The capture horizon: snapshotRows ran concurrently with commits, so
	// Rows may carry effects of any record up to the log's LSN at this point
	// — and of nothing newer. Failover divergence repair needs the bound to
	// decide whether truncating the log above some LSN invalidates this
	// checkpoint (see wal.Checkpoint.HighLSN).
	cp.HighLSN = c.wal.LastLSN()
	buf := wal.EncodeCheckpoint(cp)
	if err := c.walStorage.WriteCheckpoint(seq, buf); err != nil {
		return err
	}
	c.ckptMu.Lock()
	c.ckptSeq = seq
	c.ckptStats.checkpoints++
	c.ckptStats.lastLowLSN = lowLSN
	c.ckptStats.lastRows = len(cp.Rows)
	c.ckptStats.lastBytes = len(buf)
	c.ckptMu.Unlock()
	return nil
}

// truncateCheckpointed reclaims segments wholly below the newest durable
// checkpoint's low-water mark, then prunes superseded checkpoint blobs —
// strictly in that order: until the newest checkpoint survives a crash, a
// predecessor must remain as the recovery fallback. A failed deletion is
// simply retried by the next checkpoint round.
func (c *Container) truncateCheckpointed() error {
	c.ckptMu.Lock()
	seq := c.ckptSeq
	lowLSN := c.ckptStats.lastLowLSN
	c.ckptMu.Unlock()

	// Replication clamp: never delete segments an attached replica has not
	// durably mirrored yet. A freshly attached replica holds the floor at
	// zero until its bootstrap catches up; a detached (or crashed) replica
	// stops constraining truncation and re-bootstraps from a checkpoint if it
	// later returns behind the log (wal.ErrShipGap).
	if f, ok := c.db.repl.floor(c.id); ok && f < lowLSN {
		lowLSN = f
	}

	deleted, truncErr := c.wal.TruncateBelow(lowLSN)
	if deleted > 0 {
		c.ckptMu.Lock()
		c.ckptStats.segmentsDeleted += uint64(deleted)
		c.ckptMu.Unlock()
	}
	if truncErr != nil {
		return truncErr
	}
	seqs, err := c.walStorage.ListCheckpoints()
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s >= seq {
			continue
		}
		if err := c.walStorage.DeleteCheckpoint(s); err != nil {
			return err
		}
	}
	return nil
}

// snapshotRows captures every indexed row of every catalog hosted by the
// container, keyed the way WAL records key their writes: present rows with
// their payloads, committed deletions (absent with a non-zero TID) as
// tombstones — without them, a loader re-run before Recover could resurrect
// a row whose delete record the checkpoint absorbed and truncation erased.
// Never-committed inserts (absent at TID 0) are skipped. Each row is read
// atomically (StableRead); the snapshot as a whole is fuzzy — see the file
// comment for why that is sufficient.
func (c *Container) snapshotRows() []wal.CheckpointRow {
	var rows []wal.CheckpointRow
	for reactor, cat := range c.catalogs {
		for relation, tbl := range cat.Tables() {
			prefix := reactor + "\x00" + relation + "\x00"
			tbl.AscendRange(nil, nil, func(key []byte, rec *kv.Record) bool {
				data, tid, present := rec.StableRead()
				switch {
				case present:
					rows = append(rows, wal.CheckpointRow{Key: prefix + string(key), TID: tid, Data: data})
				case tid > 0:
					rows = append(rows, wal.CheckpointRow{Key: prefix + string(key), TID: tid, Deleted: true})
				}
				return true
			})
		}
	}
	return rows
}

// installCheckpoint loads one recovered checkpoint into the container's
// catalogs and concurrency control domain: every captured row is installed
// (absent records accept any version, so loader-populated TID-0 base rows
// survive too), the domain's TID space advances past the snapshot's
// watermark, and the replay floor is set so the subsequent log replay touches
// only the suffix.
func (c *Container) installCheckpoint(cp *wal.Checkpoint) error {
	for _, row := range cp.Rows {
		reactor, relation, key, ok := splitWALKey(row.Key)
		if !ok {
			return fmt.Errorf("engine: checkpoint: malformed key %q in container %d", row.Key, c.id)
		}
		cat := c.catalogs[reactor]
		if cat == nil {
			return fmt.Errorf("engine: checkpoint: reactor %q not mapped to container %d (placement changed since the checkpoint was taken?)", reactor, c.id)
		}
		tbl := cat.Table(relation)
		if tbl == nil {
			return fmt.Errorf("engine: checkpoint: unknown relation %s.%s in container %d", reactor, relation, c.id)
		}
		r, _ := tbl.GetOrInsert([]byte(key))
		c.domain.InstallCheckpointRow(r, tbl, row.TID, row.Data, row.Deleted)
	}
	c.domain.ObserveRecoveredTID(cp.MaxTID)
	c.ckptMu.Lock()
	c.ckptSeq = cp.Seq
	c.replayFloor = cp.LowLSN
	c.ckptStats.restoredRows = len(cp.Rows)
	c.ckptMu.Unlock()
	return nil
}

// acquireCommitGate takes the commit gate in read mode on behalf of a root
// transaction about to run its commit protocol. The slow path — a checkpoint
// quiesce is pending, so the read lock blocks — releases the executor core
// first: a transaction already inside the gate may be waiting to re-acquire
// this very core after its group-commit ack, and blocking while holding the
// core would deadlock the two through the checkpointer (reader can't finish,
// writer can't start, blocked reader holds the core both need). No record
// latch is held yet at this point, so re-acquiring the core afterwards
// cannot deadlock against a latch spinner either.
func (db *Database) acquireCommitGate(session *coreSession) {
	if db.commitGate.TryRLock() {
		return
	}
	yield := session != nil && !db.cfg.DisableCooperativeMultitasking
	if yield {
		session.release()
	}
	db.commitGate.RLock()
	if yield {
		session.acquire()
	}
}

// checkpointLoop is the background checkpointer, started by Open when
// Durability.CheckpointInterval is positive. Every tick it checkpoints the
// database, unless Durability.CheckpointBytes is set and the logs grew less
// than that since the last checkpoint.
func (db *Database) checkpointLoop() {
	defer db.ckptWG.Done()
	ticker := time.NewTicker(db.cfg.Durability.CheckpointInterval)
	defer ticker.Stop()
	var lastBytes uint64
	for {
		select {
		case <-db.ckptStop:
			return
		case <-ticker.C:
			total := uint64(0)
			if min := db.cfg.Durability.CheckpointBytes; min > 0 {
				for _, c := range db.containers {
					if c.wal != nil {
						total += c.wal.Stats().AppendedBytes
					}
				}
				if total-lastBytes < uint64(min) {
					continue
				}
			}
			// A failed checkpoint (e.g. storage trouble) is retried on the
			// next tick — lastBytes only advances on success, so the byte
			// threshold cannot swallow the retry; the previous checkpoint
			// remains the recovery plan meanwhile.
			if err := db.Checkpoint(); err == nil {
				lastBytes = total
			}
		}
	}
}

// CheckpointStats is a snapshot of one container's checkpoint activity.
type CheckpointStats struct {
	Container int
	// Enabled reports whether the container has a WAL; without one no
	// checkpoint is ever taken and the remaining fields are zero.
	Enabled bool
	// Checkpoints counts checkpoints taken by this incarnation; LastSeq is
	// the newest checkpoint sequence number written or recovered.
	Checkpoints uint64
	LastSeq     uint64
	// LastLowLSN, LastRows and LastBytes describe the newest checkpoint taken
	// by this incarnation: its replay low-water mark, captured row count and
	// encoded size.
	LastLowLSN uint64
	LastRows   int
	LastBytes  int
	// SegmentsDeleted counts log segments reclaimed by truncation (this
	// incarnation).
	SegmentsDeleted uint64
	// RestoredRows counts rows installed from a checkpoint by Recover;
	// ReplayFloor is the LSN at or below which Recover skipped log records.
	RestoredRows int
	ReplayFloor  uint64
	// CorruptSkipped counts checkpoints Recover skipped as torn or corrupt
	// before finding a valid one (or falling back to full replay).
	CorruptSkipped int
}

// CheckpointStats returns per-container checkpoint statistics.
func (db *Database) CheckpointStats() []CheckpointStats {
	out := make([]CheckpointStats, 0, len(db.containers))
	for _, c := range db.containers {
		s := CheckpointStats{Container: c.id}
		if c.wal != nil {
			s.Enabled = true
			c.ckptMu.Lock()
			s.Checkpoints = c.ckptStats.checkpoints
			s.LastSeq = c.ckptSeq
			s.LastLowLSN = c.ckptStats.lastLowLSN
			s.LastRows = c.ckptStats.lastRows
			s.LastBytes = c.ckptStats.lastBytes
			s.SegmentsDeleted = c.ckptStats.segmentsDeleted
			s.RestoredRows = c.ckptStats.restoredRows
			s.ReplayFloor = c.replayFloor
			s.CorruptSkipped = c.ckptStats.corruptSkipped
			c.ckptMu.Unlock()
		}
		out = append(out, s)
	}
	return out
}

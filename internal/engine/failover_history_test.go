package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/randutil"
	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// This file extends the black-box history checker across a failover event:
// a concurrent multi-container banking workload runs against "the cluster"
// (whatever the supervisor says the primary is), the primary's storage is
// killed mid-workload, the supervisor detects it by heartbeat and promotes
// the semi-sync replica, and the workload continues on the new primary. The
// checker sees only operation outcomes and verifies:
//
//   - every committed audit — on the replica before the failover, on the
//     promoted primary after — observes the conserved total (snapshot
//     consistency: no torn 2PC group, no mid-apply read);
//   - the committed-op count observed by audits never decreases across the
//     entire sequence, INCLUDING the failover boundary: a committed read
//     never un-happens. Audits run on the replica that gets promoted, so
//     everything an audit observed was durably mirrored below it;
//   - no acknowledged transfer is lost: every acked op's marker row is in
//     the final state;
//   - the final state is exactly explainable: balances equal the initial
//     state plus the effects of precisely the ops whose markers survived
//     (acked ops, plus possibly ops that were in flight at the kill — an
//     unacknowledged outcome is ambiguous by definition, but it is all or
//     nothing, and the marker says which).

// failoverBankType is the banking reactor with per-op marker rows: xferTagged
// transfers and records a unique op id atomically with the debit, so the
// checker can reconstruct, from the surviving markers, exactly which
// transfers' effects the final state must contain.
func failoverBankType() *core.Type {
	bal := rel.MustSchema("bal",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "amount", Type: rel.Int64}}, "id")
	oplog := rel.MustSchema("oplog",
		[]rel.Column{{Name: "op", Type: rel.Int64}}, "op")
	t := core.NewType("Account").AddRelation(bal).AddRelation(oplog)
	read := func(ctx core.Context) (int64, error) {
		row, err := ctx.Get("bal", int64(0))
		if err != nil {
			return 0, err
		}
		if row == nil {
			return 0, core.Abortf("account %s not loaded", ctx.Reactor())
		}
		return row.Int64(1), nil
	}
	t.AddProcedure("credit", func(ctx core.Context, args core.Args) (any, error) {
		cur, err := read(ctx)
		if err != nil {
			return nil, err
		}
		return nil, ctx.Update("bal", rel.Row{int64(0), cur + args.Int64(0)})
	})
	t.AddProcedure("xferTagged", func(ctx core.Context, args core.Args) (any, error) {
		dst, amt, op := args.String(0), args.Int64(1), args.Int64(2)
		cur, err := read(ctx)
		if err != nil {
			return nil, err
		}
		if err := ctx.Update("bal", rel.Row{int64(0), cur - amt}); err != nil {
			return nil, err
		}
		if err := ctx.Insert("oplog", rel.Row{op}); err != nil {
			return nil, err
		}
		fut, err := ctx.Call(dst, "credit", amt)
		if err != nil {
			return nil, err
		}
		_, err = fut.Get()
		return nil, err
	})
	// snap returns this account's balance and committed-op marker count in
	// one serializable read.
	t.AddProcedure("snap", func(ctx core.Context, _ core.Args) (any, error) {
		cur, err := read(ctx)
		if err != nil {
			return nil, err
		}
		markers := int64(0)
		if err := ctx.Scan("oplog", func(rel.Row) bool {
			markers++
			return true
		}); err != nil {
			return nil, err
		}
		return []int64{cur, markers}, nil
	})
	// audit sums balances and markers across every account in one
	// transaction spanning all containers.
	t.AddProcedure("audit", func(ctx core.Context, args core.Args) (any, error) {
		accounts := args.Strings(0)
		var total, markers int64
		for _, acct := range accounts {
			var v any
			var err error
			if acct == ctx.Reactor() {
				v, err = func() (any, error) {
					cur, err := read(ctx)
					if err != nil {
						return nil, err
					}
					m := int64(0)
					if err := ctx.Scan("oplog", func(rel.Row) bool { m++; return true }); err != nil {
						return nil, err
					}
					return []int64{cur, m}, nil
				}()
			} else {
				fut, callErr := ctx.Call(acct, "snap", nil)
				if callErr != nil {
					return nil, callErr
				}
				v, err = fut.Get()
			}
			if err != nil {
				return nil, err
			}
			pair := v.([]int64)
			total += pair[0]
			markers += pair[1]
		}
		return []int64{total, markers}, nil
	})
	// opset returns this account's surviving op ids.
	t.AddProcedure("opset", func(ctx core.Context, _ core.Args) (any, error) {
		var ops []int64
		if err := ctx.Scan("oplog", func(row rel.Row) bool {
			ops = append(ops, row.Int64(0))
			return true
		}); err != nil {
			return nil, err
		}
		return ops, nil
	})
	return t
}

type failoverOp struct {
	src, dst int
	amt      int64
	id       int64
	acked    bool
	epoch    uint64 // primary epoch the op was acknowledged under
}

func TestCrashFailoverHistoryBlackBox(t *testing.T) {
	const (
		accounts   = 8
		initial    = int64(1000)
		workers    = 4
		opsPer     = 40
		containers = 2
	)
	names := make([]string, accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct-%d", i)
	}
	def := core.NewDatabaseDef().MustAddType(failoverBankType())
	def.MustDeclareReactors("Account", names...)

	memA := wal.NewMemStorage()
	cfg := Config{
		Containers:            containers,
		ExecutorsPerContainer: 2,
		GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 8, Window: 200 * time.Microsecond},
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: memA},
		Placement: func(reactor string) int {
			var id int
			fmt.Sscanf(reactor, "acct-%d", &id)
			return id % containers
		},
	}
	db := MustOpen(def, cfg)
	for i := 0; i < accounts; i++ {
		db.MustLoad(names[i], "bal", rel.Row{int64(0), initial})
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	rep, err := OpenReplica(db, ReplicaOptions{Ack: AckSemiSync, Storage: wal.NewMemStorage()})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	// A longer miss budget than the matrix uses: the window between the kill
	// signal and the replica being closed for promotion is what keeps the
	// auditor's last replica read race-free (see the auditor loop).
	sup := NewSupervisor(db, []*Replica{rep}, SupervisorOptions{Interval: 5 * time.Millisecond, Misses: 3})
	sup.Start()
	defer sup.Stop()

	// The killer: once a third of the workload landed, the primary's storage
	// dies mid-flight.
	var opsDone atomic.Int64
	var killed atomic.Bool
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for opsDone.Load() < workers*opsPer/3 {
			time.Sleep(time.Millisecond)
		}
		killed.Store(true)
		memA.FailWrites(errors.New("injected: primary storage died"))
	}()

	histories := make([][]failoverOp, workers)
	var transfersDone atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randutil.New(int64(w) + 301)
			for i := 0; i < opsPer; i++ {
				src := randutil.UniformInt(rng, 0, accounts-1)
				dst := randutil.UniformInt(rng, 0, accounts-2)
				if dst >= src {
					dst++
				}
				amt := int64(randutil.UniformInt(rng, 1, 10))
				id := int64(w*1000 + i)
				p := sup.Primary()
				_, err := p.Execute(names[src], "xferTagged", names[dst], amt, id)
				opsDone.Add(1)
				op := failoverOp{src: src, dst: dst, amt: amt, id: id, acked: err == nil, epoch: p.Epoch()}
				histories[w] = append(histories[w], op)
				// A failed op is NEVER retried: its outcome is ambiguous (it
				// may have become durable before the kill), and re-running it
				// would double-apply. The marker decides at the end. Pace a
				// little while the failover is in flight.
				if err != nil && !errors.Is(err, ErrConflict) {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(w)
	}

	// The auditor. Phase one reads the semi-sync replica — the node that will
	// be promoted, so everything an audit observes is durably mirrored below
	// it. The phase ends when the kill fires, BEFORE the supervisor's miss
	// budget can close the replica for promotion. Phase two waits for the
	// failover and audits the promoted primary.
	var audits [][]int64
	auditorDone := make(chan struct{})
	go func() {
		defer close(auditorDone)
		audit := func(exec func() (any, error)) bool {
			res, err := exec()
			if err != nil {
				return !errors.Is(err, ErrConflict) && transfersDone.Load()
			}
			pair := res.([]int64)
			audits = append(audits, pair)
			return false
		}
		for !killed.Load() && !transfersDone.Load() {
			if audit(func() (any, error) { return rep.Execute(names[0], "audit", names) }) {
				return
			}
		}
		for sup.Stats().Failovers == 0 && !transfersDone.Load() {
			time.Sleep(time.Millisecond)
		}
		for !transfersDone.Load() {
			audit(func() (any, error) { return sup.Primary().Execute(names[0], "audit", names) })
		}
	}()

	wg.Wait()
	transfersDone.Store(true)
	<-killerDone
	<-auditorDone
	if t.Failed() {
		return
	}
	stats := sup.Stats()
	if stats.Failovers != 1 {
		t.Fatalf("supervisor drove %d failovers, want exactly 1 (err: %s)", stats.Failovers, stats.Err)
	}
	promoted := sup.Primary()
	if promoted == db || promoted.Epoch() != 1 {
		t.Fatalf("no promoted primary (epoch %d)", promoted.Epoch())
	}
	if !db.Fenced() {
		t.Fatal("deposed primary not fenced")
	}

	// Quiescent final audit on the new primary joins the history.
	res, err := promoted.Execute(names[0], "audit", names)
	if err != nil {
		t.Fatalf("final audit: %v", err)
	}
	audits = append(audits, res.([]int64))

	// Check 1: conservation in every committed audit, before and after the
	// failover.
	want := initial * accounts
	for i, a := range audits {
		if a[0] != want {
			t.Fatalf("audit %d observed total %d, want %d", i, a[0], want)
		}
	}
	// Check 2: committed reads never un-happen — the observed committed-op
	// count is monotone across the whole sequence, failover included.
	for i := 1; i < len(audits); i++ {
		if audits[i][1] < audits[i-1][1] {
			t.Fatalf("audit %d observed %d committed ops after audit %d observed %d — a committed read un-happened across the failover",
				i, audits[i][1], i-1, audits[i-1][1])
		}
	}

	// Collect the surviving marker set from the final state.
	byID := make(map[int64]failoverOp)
	ackedTotal, ackedNew := 0, 0
	for _, h := range histories {
		for _, op := range h {
			byID[op.id] = op
			if op.acked {
				ackedTotal++
				if op.epoch > 0 {
					ackedNew++
				}
			}
		}
	}
	present := make(map[int64]bool)
	for i := 0; i < accounts; i++ {
		res, err := promoted.Execute(names[i], "opset")
		if err != nil {
			t.Fatalf("opset %s: %v", names[i], err)
		}
		for _, id := range res.([]int64) {
			if _, known := byID[id]; !known {
				t.Fatalf("marker %d from nowhere", id)
			}
			if present[id] {
				t.Fatalf("marker %d present twice", id)
			}
			present[id] = true
		}
	}
	// Check 3: no acknowledged commit lost.
	for _, h := range histories {
		for _, op := range h {
			if op.acked && !present[op.id] {
				t.Fatalf("acknowledged op %d (epoch %d) lost across the failover", op.id, op.epoch)
			}
		}
	}
	// Check 4: the final state is exactly the surviving ops' outcome.
	expected := make([]int64, accounts)
	for i := range expected {
		expected[i] = initial
	}
	for id := range present {
		op := byID[id]
		expected[op.src] -= op.amt
		expected[op.dst] += op.amt
	}
	var sum int64
	for i := 0; i < accounts; i++ {
		row, err := promoted.ReadRow(names[i], "bal", int64(0))
		if err != nil || row == nil {
			t.Fatalf("ReadRow(%s): %v", names[i], err)
		}
		v := row.Int64(1)
		if v != expected[i] {
			t.Fatalf("account %d: balance %d, want %d from the surviving-marker history", i, v, expected[i])
		}
		sum += v
	}
	if sum != want {
		t.Fatalf("final total %d, want %d", sum, want)
	}
	if ackedTotal == 0 || ackedNew == 0 {
		t.Fatalf("workload proved nothing: %d acked total, %d acked on the new primary", ackedTotal, ackedNew)
	}
	db.Close()
}

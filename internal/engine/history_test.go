package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/randutil"
	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// This file is the black-box history checker: a concurrent multi-container
// banking workload records its operation history (which transfers were
// acknowledged, what every audit observed) and the checker verifies that the
// observed outcomes are explainable by a serial execution — the total
// balance is conserved in every audit snapshot and in the final state, and
// every acknowledged transfer's effect is present exactly once (no lost
// updates). It runs under the CI -race job together with the rest of
// internal/engine.

// bankAccountType is a single-balance reactor with a cross-reactor transfer.
func bankAccountType() *core.Type {
	schema := rel.MustSchema("bal",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "amount", Type: rel.Int64}}, "id")
	t := core.NewType("Account").AddRelation(schema)
	read := func(ctx core.Context) (int64, error) {
		row, err := ctx.Get("bal", int64(0))
		if err != nil {
			return 0, err
		}
		if row == nil {
			return 0, core.Abortf("account %s not loaded", ctx.Reactor())
		}
		return row.Int64(1), nil
	}
	t.AddProcedure("balance", func(ctx core.Context, _ core.Args) (any, error) {
		return read(ctx)
	})
	t.AddProcedure("credit", func(ctx core.Context, args core.Args) (any, error) {
		cur, err := read(ctx)
		if err != nil {
			return nil, err
		}
		return nil, ctx.Update("bal", rel.Row{int64(0), cur + args.Int64(0)})
	})
	// xfer debits this account and credits the destination reactor — a
	// multi-container transaction whenever the two accounts are placed on
	// different containers.
	t.AddProcedure("xfer", func(ctx core.Context, args core.Args) (any, error) {
		dst, amt := args.String(0), args.Int64(1)
		cur, err := read(ctx)
		if err != nil {
			return nil, err
		}
		if err := ctx.Update("bal", rel.Row{int64(0), cur - amt}); err != nil {
			return nil, err
		}
		fut, err := ctx.Call(dst, "credit", amt)
		if err != nil {
			return nil, err
		}
		_, err = fut.Get()
		return nil, err
	})
	// audit sums every account's balance in one transaction spanning all
	// containers; under serializability it must always observe the conserved
	// total, never a half-applied transfer.
	t.AddProcedure("audit", func(ctx core.Context, args core.Args) (any, error) {
		accounts := args.Strings(0)
		total, err := read(ctx)
		if err != nil {
			return nil, err
		}
		for _, acct := range accounts {
			if acct == ctx.Reactor() {
				continue
			}
			fut, err := ctx.Call(acct, "balance", nil)
			if err != nil {
				return nil, err
			}
			v, err := fut.Get()
			if err != nil {
				return nil, err
			}
			total += v.(int64)
		}
		return total, nil
	})
	return t
}

// histOp is one recorded workload operation.
type histOp struct {
	src, dst int
	amt      int64
	acked    bool
}

func TestBlackBoxHistorySerializableBanking(t *testing.T) {
	const (
		accounts   = 8
		initial    = int64(1000)
		workers    = 4
		opsPer     = 60
		containers = 2
	)
	names := make([]string, accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct-%d", i)
	}
	def := core.NewDatabaseDef().MustAddType(bankAccountType())
	def.MustDeclareReactors("Account", names...)

	storage := wal.NewMemStorage()
	cfg := Config{
		Containers:            containers,
		ExecutorsPerContainer: 2,
		GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 8, Window: 200 * time.Microsecond},
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: storage},
		Placement: func(reactor string) int {
			var id int
			fmt.Sscanf(reactor, "acct-%d", &id)
			return id % containers
		},
	}
	db := MustOpen(def, cfg)
	for i := 0; i < accounts; i++ {
		db.MustLoad(names[i], "bal", rel.Row{int64(0), initial})
	}

	// Drive concurrent transfers, recording the history, while an auditor
	// takes serializable snapshots of the total.
	histories := make([][]histOp, workers)
	var transfersDone atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randutil.New(int64(w) + 1)
			for i := 0; i < opsPer; i++ {
				src := randutil.UniformInt(rng, 0, accounts-1)
				dst := randutil.UniformInt(rng, 0, accounts-2)
				if dst >= src {
					dst++
				}
				amt := int64(randutil.UniformInt(rng, 1, 10))
				_, err := db.Execute(names[src], "xfer", names[dst], amt)
				if err != nil && !errors.Is(err, ErrConflict) {
					t.Errorf("xfer %d->%d: %v", src, dst, err)
					return
				}
				histories[w] = append(histories[w], histOp{src: src, dst: dst, amt: amt, acked: err == nil})
			}
		}(w)
	}
	var audits []int64
	auditorDone := make(chan struct{})
	go func() {
		defer close(auditorDone)
		// Concurrent audits lose OCC validation under heavy write traffic
		// (especially with -race slowing everything down); keep trying until
		// the transfers quiesce rather than counting attempts.
		for !transfersDone.Load() {
			res, err := db.Execute(names[0], "audit", names)
			if err != nil {
				if errors.Is(err, ErrConflict) {
					continue
				}
				t.Errorf("audit: %v", err)
				return
			}
			audits = append(audits, res.(int64))
		}
	}()
	wg.Wait()
	transfersDone.Store(true)
	<-auditorDone
	if t.Failed() {
		return
	}
	// One quiescent audit always commits; it also pins the final total.
	res, err := db.Execute(names[0], "audit", names)
	if err != nil {
		t.Fatalf("quiescent audit: %v", err)
	}
	audits = append(audits, res.(int64))

	// Check 1: every acknowledged audit observed the conserved total — a
	// torn multi-container transfer (debit visible, credit not) would show
	// up here as a different sum.
	want := initial * accounts
	if len(audits) == 0 {
		t.Fatal("no audit committed")
	}
	for i, total := range audits {
		if total != want {
			t.Fatalf("audit %d observed total %d, want %d (non-serializable snapshot)", i, total, want)
		}
	}

	// Check 2: replay the acknowledged history against the initial state; the
	// final balances must match exactly (no lost updates, no phantom
	// applications of unacknowledged transfers that reported ErrConflict).
	expected := make([]int64, accounts)
	for i := range expected {
		expected[i] = initial
	}
	acked := 0
	for _, h := range histories {
		for _, op := range h {
			if op.acked {
				expected[op.src] -= op.amt
				expected[op.dst] += op.amt
				acked++
			}
		}
	}
	if acked == 0 {
		t.Fatal("no transfer was acknowledged; the workload exercised nothing")
	}
	finals := make([]int64, accounts)
	var sum int64
	for i := 0; i < accounts; i++ {
		v, present := readV2(t, db, names[i])
		if !present {
			t.Fatalf("account %s vanished", names[i])
		}
		finals[i] = v
		sum += v
	}
	if sum != want {
		t.Fatalf("final total %d, want %d", sum, want)
	}
	for i := 0; i < accounts; i++ {
		if finals[i] != expected[i] {
			t.Fatalf("account %d final balance %d, want %d from the acknowledged history (lost or phantom update)",
				i, finals[i], expected[i])
		}
	}
	db.Close()

	// Check 3: the acknowledged history is durable — a restart recovering
	// from the WAL reproduces the same final balances.
	db2 := MustOpen(def, cfg)
	t.Cleanup(db2.Close)
	for i := 0; i < accounts; i++ {
		db2.MustLoad(names[i], "bal", rel.Row{int64(0), initial})
	}
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for i := 0; i < accounts; i++ {
		v, present := readV2(t, db2, names[i])
		if !present || v != finals[i] {
			t.Fatalf("recovered balance of account %d = (%d, %v), want %d", i, v, present, finals[i])
		}
	}
}

// readV2 reads the single balance row of an account reactor.
func readV2(t *testing.T, db *Database, reactor string) (int64, bool) {
	t.Helper()
	row, err := db.ReadRow(reactor, "bal", int64(0))
	if err != nil {
		t.Fatalf("ReadRow(%s): %v", reactor, err)
	}
	if row == nil {
		return 0, false
	}
	return row.Int64(1), true
}

// Package engine implements ReactDB's system architecture (paper §3): the
// runtime that executes reactor procedures with transactional guarantees and
// that virtualizes database architecture at deployment time.
//
// The architecture follows Figure 4 of the paper:
//
//   - a Database is a collection of Containers; each container has its own
//     storage (the catalogs of the reactors mapped to it) and its own
//     concurrency control domain (Silo-style OCC, package occ);
//   - each container owns one or more transaction Executors; an executor is a
//     virtual core (package vclock) with a request stream. Sub-transactions
//     that stay within a container are executed synchronously by the calling
//     executor; calls to reactors in other containers are routed by the
//     transport to the destination container's Router and run asynchronously,
//     returning futures;
//   - a Router picks the executor for an incoming (sub-)transaction:
//     round-robin (shared-everything-without-affinity) or affinity-based
//     (shared-everything-with-affinity, shared-nothing);
//   - the transaction coordinator commits single-container transactions with
//     the container's OCC protocol and multi-container transactions with
//     two-phase commit, using OCC validation as the prepare vote (§3.2.2);
//   - cooperative multitasking (§3.2.3): a request that blocks on the result
//     of a remote sub-transaction releases its executor's core so queued
//     requests can proceed, and re-acquires it when the result arrives.
//
// Deployment strategies S1 (shared-everything-without-affinity), S2
// (shared-everything-with-affinity) and S3 (shared-nothing, sync or async
// depending on the application program) from §3.3 are plain Config values:
// changing the database architecture never requires application changes.
package engine

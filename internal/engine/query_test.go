package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/kv"
	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// shopType builds the query-layer test fixture: a "Shop" reactor holding a
// customers relation and a secondarily-indexed orders relation, write
// procedures that exercise index-neutral, index-moving, inserting and
// deleting paths, and hand-written analytics procedures the declarative
// queries are differenced against.
func shopType() *core.Type {
	custs := rel.MustSchema("custs",
		[]rel.Column{
			{Name: "cust_id", Type: rel.Int64},
			{Name: "region", Type: rel.String},
		}, "cust_id")
	orders := rel.MustSchema("orders",
		[]rel.Column{
			{Name: "order_id", Type: rel.Int64},
			{Name: "cust", Type: rel.Int64},
			{Name: "branch", Type: rel.String},
			{Name: "total", Type: rel.Float64},
		}, "order_id").
		MustAddIndex("by_cust", "cust").
		MustAddIndex("by_branch", "branch")

	t := core.NewType("Shop").AddRelation(custs).AddRelation(orders)

	t.AddProcedure("add_order", func(ctx core.Context, args core.Args) (any, error) {
		return nil, ctx.Insert("orders", rel.Row{args.Int64(0), args.Int64(1), args.String(2), args.Float64(3)})
	})
	t.AddProcedure("del_order", func(ctx core.Context, args core.Args) (any, error) {
		return nil, ctx.Delete("orders", args.Int64(0))
	})
	// move_branch is the index-moving write: the row's by_branch entry must
	// migrate and concurrent branch scans must see it as a phantom.
	t.AddProcedure("move_branch", func(ctx core.Context, args core.Args) (any, error) {
		row, err := ctx.Get("orders", args.Int64(0))
		if err != nil || row == nil {
			return nil, err
		}
		return nil, ctx.Update("orders", rel.Row{row.Int64(0), row.Int64(1), args.String(1), row.Float64(3)})
	})
	// swap_totals swaps the totals of two orders: index-neutral (by_cust and
	// by_branch keys unchanged) but invariant-preserving for every
	// differential query below.
	t.AddProcedure("swap_totals", func(ctx core.Context, args core.Args) (any, error) {
		a, err := ctx.Get("orders", args.Int64(0))
		if err != nil || a == nil {
			return nil, err
		}
		b, err := ctx.Get("orders", args.Int64(1))
		if err != nil || b == nil {
			return nil, err
		}
		if err := ctx.Update("orders", rel.Row{a.Int64(0), a.Int64(1), a.String(2), b.Float64(3)}); err != nil {
			return nil, err
		}
		return nil, ctx.Update("orders", rel.Row{b.Int64(0), b.Int64(1), b.String(2), a.Float64(3)})
	})
	t.AddProcedure("insert_and_abort", func(ctx core.Context, args core.Args) (any, error) {
		if err := ctx.Insert("orders", rel.Row{args.Int64(0), args.Int64(1), args.String(2), args.Float64(3)}); err != nil {
			return nil, err
		}
		return nil, core.Abortf("deliberate failure after insert")
	})

	// hand_region_order_ids: the procedural twin of filter+join — order ids of
	// customers in the given region, ascending.
	t.AddProcedure("hand_region_order_ids", func(ctx core.Context, args core.Args) (any, error) {
		region := args.String(0)
		custRows, err := ctx.SelectAll("custs")
		if err != nil {
			return nil, err
		}
		in := make(map[int64]bool)
		for _, c := range custRows {
			if c.String(1) == region {
				in[c.Int64(0)] = true
			}
		}
		orderRows, err := ctx.SelectAll("orders")
		if err != nil {
			return nil, err
		}
		var ids []int64
		for _, o := range orderRows {
			if in[o.Int64(1)] {
				ids = append(ids, o.Int64(0))
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids, nil
	})

	// hand_region_stats: the procedural twin of join+aggregate — per-region
	// (sum of totals, order count), regions ascending.
	t.AddProcedure("hand_region_stats", func(ctx core.Context, args core.Args) (any, error) {
		custRows, err := ctx.SelectAll("custs")
		if err != nil {
			return nil, err
		}
		region := make(map[int64]string)
		for _, c := range custRows {
			region[c.Int64(0)] = c.String(1)
		}
		orderRows, err := ctx.SelectAll("orders")
		if err != nil {
			return nil, err
		}
		sums := make(map[string]float64)
		counts := make(map[string]int64)
		for _, o := range orderRows {
			r, ok := region[o.Int64(1)]
			if !ok {
				continue
			}
			sums[r] += o.Float64(3)
			counts[r]++
		}
		var regions []string
		for r := range sums {
			regions = append(regions, r)
		}
		sort.Strings(regions)
		out := make([]rel.Row, 0, len(regions))
		for _, r := range regions {
			out = append(out, rel.Row{r, sums[r], counts[r]})
		}
		return out, nil
	})

	// hand_top_totals: the procedural twin of order+limit — the k largest
	// order totals, descending.
	t.AddProcedure("hand_top_totals", func(ctx core.Context, args core.Args) (any, error) {
		k := int(args.Int64(0))
		orderRows, err := ctx.SelectAll("orders")
		if err != nil {
			return nil, err
		}
		totals := make([]float64, 0, len(orderRows))
		for _, o := range orderRows {
			totals = append(totals, o.Float64(3))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(totals)))
		if len(totals) > k {
			totals = totals[:k]
		}
		return totals, nil
	})

	// query_own_write pins read-your-writes through the index path: the
	// procedure's own uncommitted insert must be visible to its indexed query.
	t.AddProcedure("query_own_write", func(ctx core.Context, args core.Args) (any, error) {
		cust := args.Int64(0)
		if err := ctx.Insert("orders", rel.Row{args.Int64(1), cust, "own", 1.0}); err != nil {
			return nil, err
		}
		res, err := ctx.Query(rel.NewQuery().
			From("o", "orders").
			Where("o", "cust", rel.Eq, cust).
			Count("n"))
		if err != nil {
			return nil, err
		}
		return res.Rows[0].Int64(0), nil
	})

	// sum_totals sums a remote reactor set procedurally, for the fan-out
	// differential.
	t.AddProcedure("query_remote_sum", func(ctx core.Context, args core.Args) (any, error) {
		res, err := ctx.Query(rel.NewQuery().
			From("o", "orders", args.Strings(0)...).
			Sum("o.total", "total"))
		if err != nil {
			return nil, err
		}
		return res.Rows[0].Float64(0), nil
	})

	return t
}

// shopSeed describes the deterministic dataset the differential tests load:
// four customers over three regions, twelve orders with distinct totals.
// Concurrent writers only swap totals between orders of the same customer and
// move orders between branches, so the derived values below are
// time-invariant: the order-id set per region, the total sum and order count
// per region, and the global multiset of totals.
type shopSeed struct {
	custs  []rel.Row
	orders []rel.Row
}

func newShopSeed() *shopSeed {
	s := &shopSeed{
		custs: []rel.Row{
			{int64(1), "north"},
			{int64(2), "south"},
			{int64(3), "north"},
			{int64(4), "east"},
		},
	}
	branches := []string{"west", "mid"}
	for i := int64(1); i <= 12; i++ {
		s.orders = append(s.orders, rel.Row{
			i,                   // order_id
			(i-1)%4 + 1,         // cust: 1..4 round robin
			branches[int(i)%2],  // branch
			float64(i*10) + 0.5, // total: distinct
		})
	}
	return s
}

func (s *shopSeed) load(t testing.TB, db *Database, reactor string) {
	t.Helper()
	for _, r := range s.custs {
		db.MustLoad(reactor, "custs", r)
	}
	for _, r := range s.orders {
		db.MustLoad(reactor, "orders", r)
	}
}

func (s *shopSeed) regionOf(cust int64) string {
	for _, c := range s.custs {
		if c.Int64(0) == cust {
			return c.String(1)
		}
	}
	return ""
}

func (s *shopSeed) regionOrderIDs(region string) []int64 {
	var ids []int64
	for _, o := range s.orders {
		if s.regionOf(o.Int64(1)) == region {
			ids = append(ids, o.Int64(0))
		}
	}
	return ids
}

func (s *shopSeed) regionStats() []rel.Row {
	sums := make(map[string]float64)
	counts := make(map[string]int64)
	for _, o := range s.orders {
		r := s.regionOf(o.Int64(1))
		sums[r] += o.Float64(3)
		counts[r]++
	}
	var regions []string
	for r := range sums {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	out := make([]rel.Row, 0, len(regions))
	for _, r := range regions {
		out = append(out, rel.Row{r, sums[r], counts[r]})
	}
	return out
}

func (s *shopSeed) topTotals(k int) []float64 {
	totals := make([]float64, 0, len(s.orders))
	for _, o := range s.orders {
		totals = append(totals, o.Float64(3))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(totals)))
	return totals[:k]
}

func openShop(t testing.TB, cfg Config, reactors ...string) *Database {
	t.Helper()
	def := core.NewDatabaseDef().MustAddType(shopType())
	def.MustDeclareReactors("Shop", reactors...)
	db, err := Open(def, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(db.Close)
	return db
}

// retryConflict runs fn until it succeeds or fails with a non-conflict error,
// for reads racing the differential tests' concurrent writers.
func retryConflict(t *testing.T, fn func() (any, error)) any {
	t.Helper()
	for {
		v, err := fn()
		if err == nil {
			return v
		}
		if !errors.Is(err, ErrConflict) {
			t.Fatalf("non-conflict error: %v", err)
		}
	}
}

// TestQueryDifferentialUnderConcurrentWriters is the differential suite:
// filter+join, join+aggregate and order+limit each run both as a declarative
// query and as a hand-written procedure while writers continuously swap
// totals within customers and move orders between branches. Both forms must
// always produce the invariant answer derived from the seed — any serialization
// hole in the operator layer, the index maintenance or the scan validation
// shows up as a mismatch.
func TestQueryDifferentialUnderConcurrentWriters(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(2)
	db := openShop(t, cfg, "shop-0")
	seed := newShopSeed()
	seed.load(t, db, "shop-0")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			branches := []string{"west", "mid", "far"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Orders i and i+4 share a customer (cust = id mod 4).
				a := int64(i%4 + 1 + 4*w)
				b := a + 4
				if _, err := db.Execute("shop-0", "swap_totals", a, b); err != nil && !errors.Is(err, ErrConflict) {
					t.Errorf("swap_totals: %v", err)
					return
				}
				if _, err := db.Execute("shop-0", "move_branch", int64(i%12+1), branches[i%3]); err != nil && !errors.Is(err, ErrConflict) {
					t.Errorf("move_branch: %v", err)
					return
				}
			}
		}(w)
	}
	defer func() { close(stop); wg.Wait() }()

	wantIDs := seed.regionOrderIDs("north")
	wantStats := seed.regionStats()
	wantTop := seed.topTotals(5)

	for iter := 0; iter < 25; iter++ {
		// Differential 1: filter + join.
		res := retryConflict(t, func() (any, error) {
			return db.Query(rel.NewQuery().
				From("c", "custs", "shop-0").
				From("o", "orders", "shop-0").
				Join("c", "cust_id", "o", "cust").
				Where("c", "region", rel.Eq, "north").
				Select("o.order_id").
				OrderBy("o.order_id", false))
		}).(*rel.Result)
		gotIDs := make([]int64, 0, len(res.Rows))
		for _, r := range res.Rows {
			gotIDs = append(gotIDs, r.Int64(0))
		}
		hand := retryConflict(t, func() (any, error) {
			return db.Execute("shop-0", "hand_region_order_ids", "north")
		}).([]int64)
		if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) || fmt.Sprint(hand) != fmt.Sprint(wantIDs) {
			t.Fatalf("iter %d: filter+join query=%v hand=%v want=%v", iter, gotIDs, hand, wantIDs)
		}

		// Differential 2: join + aggregate.
		res = retryConflict(t, func() (any, error) {
			return db.Query(rel.NewQuery().
				From("c", "custs", "shop-0").
				From("o", "orders", "shop-0").
				Join("c", "cust_id", "o", "cust").
				GroupBy("c.region").
				Sum("o.total", "total").
				Count("n").
				OrderBy("c.region", false))
		}).(*rel.Result)
		handStats := retryConflict(t, func() (any, error) {
			return db.Execute("shop-0", "hand_region_stats")
		}).([]rel.Row)
		if fmt.Sprint(res.Rows) != fmt.Sprint(wantStats) || fmt.Sprint(handStats) != fmt.Sprint(wantStats) {
			t.Fatalf("iter %d: join+agg query=%v hand=%v want=%v", iter, res.Rows, handStats, wantStats)
		}

		// Differential 3: order + limit.
		res = retryConflict(t, func() (any, error) {
			return db.Query(rel.NewQuery().
				From("o", "orders", "shop-0").
				OrderBy("o.total", true).
				Limit(5).
				Select("o.total"))
		}).(*rel.Result)
		gotTop := make([]float64, 0, len(res.Rows))
		for _, r := range res.Rows {
			gotTop = append(gotTop, r.Float64(0))
		}
		handTop := retryConflict(t, func() (any, error) {
			return db.Execute("shop-0", "hand_top_totals", int64(5))
		}).([]float64)
		if fmt.Sprint(gotTop) != fmt.Sprint(wantTop) || fmt.Sprint(handTop) != fmt.Sprint(wantTop) {
			t.Fatalf("iter %d: order+limit query=%v hand=%v want=%v", iter, gotTop, handTop, wantTop)
		}
	}
}

// TestQueryJoinOrderAndAccessPaths pins the planner's observable decisions:
// greedy reorders the declared (orders, custs) pair smallest-first, Naive()
// keeps declaration order, both agree on results; equality filters choose the
// pk-prefix and secondary-index access paths and fall back to full scans.
func TestQueryJoinOrderAndAccessPaths(t *testing.T) {
	db := openShop(t, NewSharedEverythingWithAffinity(1), "shop-0")
	seed := newShopSeed()
	seed.load(t, db, "shop-0")

	base := func() *rel.Query {
		return rel.NewQuery().
			From("o", "orders", "shop-0"). // declared first, 12 rows
			From("c", "custs", "shop-0").  // 4 rows: greedy must seed here
			Join("c", "cust_id", "o", "cust").
			GroupBy("c.region").
			Count("n").
			OrderBy("c.region", false)
	}
	greedy, err := db.Query(base())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(greedy.JoinOrder) != "[c o]" {
		t.Fatalf("greedy join order = %v, want [c o]", greedy.JoinOrder)
	}
	naive, err := db.Query(base().Naive())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(naive.JoinOrder) != "[o c]" {
		t.Fatalf("naive join order = %v, want declaration order [o c]", naive.JoinOrder)
	}
	if fmt.Sprint(greedy.Rows) != fmt.Sprint(naive.Rows) {
		t.Fatalf("greedy and naive disagree: %v vs %v", greedy.Rows, naive.Rows)
	}

	paths := func(q *rel.Query) map[string]string {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.AccessPaths
	}
	if p := paths(rel.NewQuery().From("o", "orders", "shop-0").
		Where("o", "order_id", rel.Eq, int64(3)).Count("n")); p["o"] != "pk-prefix" {
		t.Fatalf("pk equality path = %q, want pk-prefix", p["o"])
	}
	if p := paths(rel.NewQuery().From("o", "orders", "shop-0").
		Where("o", "cust", rel.Eq, int64(2)).Count("n")); p["o"] != "index:by_cust" {
		t.Fatalf("cust equality path = %q, want index:by_cust", p["o"])
	}
	if p := paths(rel.NewQuery().From("o", "orders", "shop-0").
		Where("o", "total", rel.Gt, 50.0).Count("n")); p["o"] != "scan" {
		t.Fatalf("range-only path = %q, want scan", p["o"])
	}

	// The indexed path must return exactly the rows the filter admits.
	res, err := db.Query(rel.NewQuery().
		From("o", "orders", "shop-0").
		Where("o", "cust", rel.Eq, int64(2)).
		Select("o.order_id").
		OrderBy("o.order_id", false))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows) != "[[2] [6] [10]]" {
		t.Fatalf("indexed rows = %v, want orders 2 6 10", res.Rows)
	}
}

// TestQueryFanOutAcrossReactors unions one relation over three shared-nothing
// reactors — from the ad-hoc entry point and from inside a procedure on a
// fourth-party reactor — and differences the result against per-reactor sums.
func TestQueryFanOutAcrossReactors(t *testing.T) {
	cfg := NewSharedNothing(3)
	cfg.Placement = func(reactor string) int {
		var idx int
		fmt.Sscanf(reactor, "shop-%d", &idx)
		return idx % 3
	}
	db := openShop(t, cfg, "shop-0", "shop-1", "shop-2")
	want := 0.0
	id := int64(1)
	for i, r := range []string{"shop-0", "shop-1", "shop-2"} {
		for j := 0; j <= i; j++ {
			total := float64(id) * 7
			db.MustLoad(r, "orders", rel.Row{id, int64(1), "b", total})
			want += total
			id++
		}
	}
	reactors := []string{"shop-0", "shop-1", "shop-2"}

	res, err := db.Query(rel.NewQuery().
		From("o", "orders", reactors...).
		Sum("o.total", "total").
		Count("n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].Float64(0); got != want {
		t.Fatalf("fan-out sum = %v, want %v", got, want)
	}
	if got := res.Rows[0].Int64(1); got != id-1 {
		t.Fatalf("fan-out count = %d, want %d", got, id-1)
	}

	// Same union initiated inside a procedure: the leaves dispatch as read
	// sub-transactions of the procedure's root.
	v, err := db.Execute("shop-0", "query_remote_sum", reactors)
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != want {
		t.Fatalf("procedure fan-out sum = %v, want %v", v, want)
	}
}

// shopOrdersTable exposes the raw table for index-consistency assertions.
func shopOrdersTable(db *Database, reactor string) *rel.Table {
	return db.containerOf(reactor).catalog(reactor).Table("orders")
}

// assertIndexesMatchTable derives, for every secondary index, the expected
// entry set from a full primary scan and asserts the index holds exactly
// those entries — no stale entries, no missing ones.
func assertIndexesMatchTable(t *testing.T, tbl *rel.Table, label string) {
	t.Helper()
	schema := tbl.Schema()
	var keys []string
	tbl.AscendPrefix(nil, func(key []byte, _ *kv.Record) bool {
		keys = append(keys, string(key))
		return true
	})
	present := 0
	rowsByKey := make(map[string]rel.Row)
	for _, k := range keys {
		row, err := tbl.ReadRow([]byte(k))
		if err != nil {
			t.Fatalf("%s: ReadRow(%q): %v", label, k, err)
		}
		if row != nil {
			present++
			rowsByKey[k] = row
		}
	}
	for pos, ix := range schema.Indexes() {
		if got := tbl.IndexLen(pos); got != present {
			t.Fatalf("%s: index %s holds %d entries, table has %d live rows",
				label, ix.Name(), got, present)
		}
		for pk, row := range rowsByKey {
			vals := make([]any, 0, len(ix.ColumnIndices()))
			for _, ci := range ix.ColumnIndices() {
				vals = append(vals, row[ci])
			}
			prefix, err := schema.EncodeIndexPrefix(ix, vals...)
			if err != nil {
				t.Fatalf("%s: EncodeIndexPrefix: %v", label, err)
			}
			found := false
			tbl.AscendIndexPrefix(pos, []byte(prefix), func(entryPK []byte) bool {
				if string(entryPK) == pk {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("%s: index %s misses live row %q", label, ix.Name(), pk)
			}
		}
	}
}

// TestQueryIndexAbortConsistency pins that aborted transactions leave no
// trace in secondary indexes: a user abort after an insert, and a botched
// delete, keep indexes exactly synchronized with the table.
func TestQueryIndexAbortConsistency(t *testing.T) {
	db := openShop(t, NewSharedEverythingWithAffinity(1), "shop-0")
	seed := newShopSeed()
	seed.load(t, db, "shop-0")
	tbl := shopOrdersTable(db, "shop-0")
	assertIndexesMatchTable(t, tbl, "after load")

	if _, err := db.Execute("shop-0", "insert_and_abort", int64(99), int64(1), "ghost", 1.0); !core.IsUserAbort(err) {
		t.Fatalf("insert_and_abort err = %v, want user abort", err)
	}
	assertIndexesMatchTable(t, tbl, "after aborted insert")
	res, err := db.Query(rel.NewQuery().
		From("o", "orders", "shop-0").
		Where("o", "branch", rel.Eq, "ghost").
		Count("n"))
	if err != nil {
		t.Fatal(err)
	}
	if res.AccessPaths["o"] != "index:by_branch" || res.Rows[0].Int64(0) != 0 {
		t.Fatalf("ghost branch after abort: path=%s count=%d", res.AccessPaths["o"], res.Rows[0].Int64(0))
	}

	// Committed insert, move and delete keep the indexes synchronized.
	for _, step := range [][]any{
		{"add_order", int64(99), int64(1), "ghost", 2.0},
		{"move_branch", int64(99), "west"},
		{"del_order", int64(99)},
	} {
		if _, err := db.Execute("shop-0", step[0].(string), step[1:]...); err != nil {
			t.Fatalf("%s: %v", step[0], err)
		}
		assertIndexesMatchTable(t, tbl, step[0].(string))
	}
}

// TestQueryReadsOwnWrites pins read-your-writes through the index access
// path: an uncommitted insert is visible to the same transaction's indexed
// query even though its index entry installs only at commit.
func TestQueryReadsOwnWrites(t *testing.T) {
	db := openShop(t, NewSharedEverythingWithAffinity(1), "shop-0")
	v, err := db.Execute("shop-0", "query_own_write", int64(7), int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 1 {
		t.Fatalf("own insert invisible to indexed query: count = %d", v)
	}
}

// TestCrashMatrixIndexMaintenance is the index-maintenance crash matrix: a
// scripted workload of inserts, index-moving updates, deletes and a
// checkpoint runs against an indexed relation on a WAL; the matrix kills the
// machine at every storage IO boundary, recovers, and asserts that the
// secondary indexes rebuilt by checkpoint install and log replay exactly
// match the recovered primary data — then commits more index-moving work in
// the recovered incarnation and re-verifies after a second restart.
func TestCrashMatrixIndexMaintenance(t *testing.T) {
	def := core.NewDatabaseDef().MustAddType(shopType())
	def.MustDeclareReactors("Shop", "shop-0")
	mkCfg := func(storage wal.Storage) Config {
		return Config{
			Containers:            1,
			ExecutorsPerContainer: 1,
			Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: storage, SegmentSize: 192},
			GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 4, Window: 200 * time.Microsecond},
		}
	}
	type acks struct {
		adds  [4]bool
		move  bool
		del   bool
		ck    bool
		move2 bool
	}
	script := func(db *Database) acks {
		var a acks
		exec := func(proc string, args ...any) bool {
			_, err := db.Execute("shop-0", proc, args...)
			return err == nil
		}
		for i := range a.adds {
			a.adds[i] = exec("add_order", int64(i+1), int64(i%2+1), "north", float64(i*10))
		}
		a.move = exec("move_branch", int64(1), "south")
		a.del = exec("del_order", int64(2))
		a.ck = db.Checkpoint() == nil
		a.move2 = exec("move_branch", int64(3), "east")
		return a
	}
	verify := func(db *Database, a acks, label string) {
		t.Helper()
		tbl := shopOrdersTable(db, "shop-0")
		assertIndexesMatchTable(t, tbl, label)
		// Acknowledged effects must be present with index entries to match.
		lookup := func(branch string) map[string]bool {
			schema := tbl.Schema()
			_, ix := schema.IndexNamed("by_branch")
			prefix, err := schema.EncodeIndexPrefix(ix, branch)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			pos, _ := schema.IndexNamed("by_branch")
			got := make(map[string]bool)
			tbl.AscendIndexPrefix(pos, []byte(prefix), func(pk []byte) bool {
				got[string(pk)] = true
				return true
			})
			return got
		}
		// move_branch commits vacuously when its row is absent, so the ack
		// implies an indexed entry only if the insert it moves was also acked.
		if a.move2 && a.adds[2] {
			east := lookup("east")
			if len(east) != 1 {
				t.Fatalf("%s: acknowledged move to east not indexed: %v", label, east)
			}
		}
		if a.del {
			row, err := db.ReadRow("shop-0", "orders", int64(2))
			if err != nil || row != nil {
				t.Fatalf("%s: deleted order 2 resurrected: row=%v err=%v", label, row, err)
			}
		}
	}

	// Calibration.
	calCtr := &crashCounter{crashAt: -1}
	db := MustOpen(def, mkCfg(&crashStorage{inner: wal.NewMemStorage(), ctr: calCtr}))
	a := script(db)
	if !(a.adds[0] && a.adds[1] && a.adds[2] && a.adds[3] && a.move && a.del && a.ck && a.move2) {
		t.Fatalf("crash-free run did not acknowledge every op: %+v", a)
	}
	verify(db, a, "crash-free")
	db.Close()
	total := calCtr.ops.Load()
	if total < 8 {
		t.Fatalf("calibration run produced only %d IO boundaries", total)
	}

	for crashAt := int64(0); crashAt <= total; crashAt++ {
		mem := wal.NewMemStorage()
		db := MustOpen(def, mkCfg(&crashStorage{inner: mem, ctr: &crashCounter{crashAt: crashAt}}))
		a := script(db)
		db.Close()

		crashed := mem.CrashCopy()
		label := fmt.Sprintf("crashAt=%d", crashAt)
		db2 := MustOpen(def, mkCfg(crashed))
		if _, err := db2.Recover(); err != nil {
			t.Fatalf("%s: Recover: %v", label, err)
		}
		verify(db2, a, label)

		// Recovered incarnation: more index-moving work, then re-recover.
		if _, err := db2.Execute("shop-0", "add_order", int64(9), int64(1), "west", 90.0); err != nil {
			t.Fatalf("%s: post-recovery add_order: %v", label, err)
		}
		if row, err := db2.ReadRow("shop-0", "orders", int64(1)); err == nil && row != nil {
			if _, err := db2.Execute("shop-0", "move_branch", int64(1), "west"); err != nil {
				t.Fatalf("%s: post-recovery move_branch: %v", label, err)
			}
		}
		verify(db2, a, label+" (post-recovery writes)")
		db2.Close()

		db3 := MustOpen(def, mkCfg(crashed))
		if _, err := db3.Recover(); err != nil {
			t.Fatalf("%s: second Recover: %v", label, err)
		}
		assertIndexesMatchTable(t, shopOrdersTable(db3, "shop-0"), label+" (restart 2)")
		if row, err := db3.ReadRow("shop-0", "orders", int64(9)); err != nil || row == nil {
			t.Fatalf("%s: post-recovery insert lost: row=%v err=%v", label, row, err)
		}
		db3.Close()
	}
}

// TestAdaptiveTargetFloorsAtGroupCommitWindow pins the coordination between
// the adaptive-depth controller and group commit: the wait target the AIMD
// loop steers toward is floored at the group-commit window, since
// acknowledgement latency cannot fall below the flush cadence.
func TestAdaptiveTargetFloorsAtGroupCommitWindow(t *testing.T) {
	mk := func(gcEnabled bool, window time.Duration) *Database {
		cfg := NewSharedEverythingWithAffinity(1)
		cfg.AdaptiveDepth = AdaptiveDepthConfig{Enabled: true, TargetP99: 300 * time.Microsecond, Floor: 2, Interval: time.Hour}
		cfg.GroupCommit = GroupCommitConfig{Enabled: gcEnabled, Window: window, MaxBatch: 8}
		return openShop(t, cfg, "shop-0")
	}
	if got := mk(false, 5*time.Millisecond).adaptiveTarget(); got != 300*time.Microsecond {
		t.Fatalf("target without group commit = %v, want 300µs", got)
	}
	if got := mk(true, 5*time.Millisecond).adaptiveTarget(); got != 5*time.Millisecond {
		t.Fatalf("target with 5ms window = %v, want the window", got)
	}
	if got := mk(true, 100*time.Microsecond).adaptiveTarget(); got != 300*time.Microsecond {
		t.Fatalf("target with sub-target window = %v, want TargetP99", got)
	}
}

// TestAdaptiveDepthHoldsAtGroupCommitWindow is the behavioral half: the same
// overload that walks the depth down in TestAdaptiveDepthShrinksUnderOverload
// must NOT shrink it when a wide group-commit window raises the wait target —
// queue waits below the flush cadence are not congestion.
func TestAdaptiveDepthHoldsAtGroupCommitWindow(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(1)
	cfg.QueueDepth = 64
	cfg.Costs.Processing = 500 * time.Microsecond
	cfg.AdaptiveDepth = AdaptiveDepthConfig{
		Enabled:   true,
		TargetP99: 300 * time.Microsecond,
		Floor:     2,
		Interval:  2 * time.Millisecond,
	}
	cfg.GroupCommit = GroupCommitConfig{Enabled: true, Window: time.Second, MaxBatch: 64}
	db := openAccounts(t, 16, 100, cfg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := accountNames(16)[c]
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Execute(name, "credit", 1.0); err != nil && !errors.Is(err, ErrConflict) {
					t.Errorf("credit: %v", err)
					return
				}
			}
		}(c)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if got := db.QueueStats()[0].EffectiveDepth; got != 64 {
			close(stop)
			wg.Wait()
			t.Fatalf("effective depth shrank to %d despite wait target floored at the group-commit window", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

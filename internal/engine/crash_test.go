package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"reactdb/internal/wal"
)

// This file is the crash-injection harness: it enumerates every WAL append
// and fsync boundary of a scripted multi-container workload, kills the
// "machine" at each one, recovers from the durable prefix, and asserts the
// all-or-nothing invariant of the atomic commit protocol — an acknowledged
// transaction is fully present after recovery, an unacknowledged
// multi-container transaction is either fully present or fully absent, and
// never durable on a strict subset of its participants.

var errInjectedCrash = errors.New("injected crash: storage is dead")

// crashCounter assigns every storage IO operation (segment create, write,
// fsync) a position in a total order and fails every operation past the
// configured crash point, leaving no trace — the durable state frozen at the
// boundary is exactly what MemStorage.CrashCopy returns afterwards. With
// concurrent group committers the interleaving between containers is decided
// by the scheduler, but any prefix of the total order is a consistent
// machine-death cut, so the invariant must hold at every enumerated point.
type crashCounter struct {
	ops     atomic.Int64
	crashAt int64 // ops allowed to succeed; <0 means never crash
}

func (c *crashCounter) allow() bool {
	if c.crashAt < 0 {
		c.ops.Add(1)
		return true
	}
	return c.ops.Add(1) <= c.crashAt
}

// crashStorage wraps a Storage tree with the shared crash counter.
type crashStorage struct {
	inner wal.Storage
	ctr   *crashCounter
}

func (s *crashStorage) Sub(name string) wal.Storage {
	return &crashStorage{inner: s.inner.Sub(name), ctr: s.ctr}
}

func (s *crashStorage) List() ([]uint64, error) { return s.inner.List() }

func (s *crashStorage) ReadSegment(index uint64) ([]byte, error) {
	return s.inner.ReadSegment(index)
}

func (s *crashStorage) SyncSegment(index uint64) error {
	if !s.ctr.allow() {
		return errInjectedCrash
	}
	return s.inner.SyncSegment(index)
}

func (s *crashStorage) Create(index uint64) (wal.SegmentFile, error) {
	if !s.ctr.allow() {
		return nil, errInjectedCrash
	}
	f, err := s.inner.Create(index)
	if err != nil {
		return nil, err
	}
	return &crashSegmentFile{inner: f, ctr: s.ctr}, nil
}

func (s *crashStorage) DeleteSegment(index uint64) error {
	if !s.ctr.allow() {
		return errInjectedCrash
	}
	return s.inner.DeleteSegment(index)
}

func (s *crashStorage) ListCheckpoints() ([]uint64, error) { return s.inner.ListCheckpoints() }

func (s *crashStorage) ReadCheckpoint(seq uint64) ([]byte, error) {
	return s.inner.ReadCheckpoint(seq)
}

// WriteCheckpoint past the crash point leaves a half-written blob behind —
// the torn checkpoint file a machine death mid-write produces — so the
// matrix exercises recovery's corrupt-checkpoint fallback, not just its
// happy path.
func (s *crashStorage) WriteCheckpoint(seq uint64, data []byte) error {
	if !s.ctr.allow() {
		_ = s.inner.WriteCheckpoint(seq, data[:len(data)/2])
		return errInjectedCrash
	}
	return s.inner.WriteCheckpoint(seq, data)
}

func (s *crashStorage) DeleteCheckpoint(seq uint64) error {
	if !s.ctr.allow() {
		return errInjectedCrash
	}
	return s.inner.DeleteCheckpoint(seq)
}

type crashSegmentFile struct {
	inner wal.SegmentFile
	ctr   *crashCounter
}

func (f *crashSegmentFile) Write(p []byte) (int, error) {
	if !f.ctr.allow() {
		return 0, errInjectedCrash
	}
	return f.inner.Write(p)
}

func (f *crashSegmentFile) Sync() error {
	if !f.ctr.allow() {
		return errInjectedCrash
	}
	return f.inner.Sync()
}

func (f *crashSegmentFile) Close() error { return f.inner.Close() }

// crashCfg deploys two containers with kv0 on container 0 and kv1 on
// container 1; grouped selects group commit (the amortized 2PC logging path)
// versus eager per-record append+fsync.
func crashCfg(storage wal.Storage, grouped bool) Config {
	cfg := Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: storage},
		Placement: func(reactor string) int {
			if reactor == "kv0" {
				return 0
			}
			return 1
		},
	}
	if grouped {
		cfg.GroupCommit = GroupCommitConfig{Enabled: true, MaxBatch: 4, Window: 200 * time.Microsecond}
	}
	return cfg
}

// crashScript runs the scripted workload against db and returns which ops
// were acknowledged (Execute returned nil). Ops past the crash point fail;
// their outcome is deliberately ignored beyond recording the missing ack.
type crashScriptAcks struct {
	put0, put1, copy01, put3, copy10 bool
}

func runCrashScript(db *Database) crashScriptAcks {
	var a crashScriptAcks
	exec := func(reactor, proc string, args ...any) bool {
		_, err := db.Execute(reactor, proc, args...)
		return err == nil
	}
	a.put0 = exec("kv0", "put", int64(1), int64(10))
	a.put1 = exec("kv1", "put", int64(1), int64(11))
	a.copy01 = exec("kv0", "copyTo", "kv1", int64(2), int64(20)) // 2PC, coordinator c0
	a.put3 = exec("kv0", "put", int64(3), int64(30))
	a.copy10 = exec("kv1", "copyTo", "kv0", int64(4), int64(40)) // 2PC, coordinator c1
	return a
}

// assertCrashInvariants checks the recovered state of db against the ack
// vector: acknowledged effects present, unacknowledged single-container
// effects present-or-absent with the right value, and multi-container
// transactions never durable on a strict subset of their participants.
func assertCrashInvariants(t *testing.T, db *Database, a crashScriptAcks, label string) {
	t.Helper()
	single := func(acked bool, reactor string, k, want int64) {
		v, present := readV(t, db, reactor, k)
		if acked && (!present || v != want) {
			t.Fatalf("%s: acknowledged %s[%d] = (%d, %v), want %d", label, reactor, k, v, present, want)
		}
		if present && v != want {
			t.Fatalf("%s: %s[%d] recovered with wrong value %d, want %d", label, reactor, k, v, want)
		}
	}
	pair := func(acked bool, k, want int64, desc string) {
		v0, p0 := readV(t, db, "kv0", k)
		v1, p1 := readV(t, db, "kv1", k)
		if p0 != p1 {
			t.Fatalf("%s: %s durable on a strict subset of its participants: kv0=%v kv1=%v",
				label, desc, p0, p1)
		}
		if acked && !p0 {
			t.Fatalf("%s: acknowledged %s absent after recovery", label, desc)
		}
		if p0 && (v0 != want || v1 != want) {
			t.Fatalf("%s: %s recovered with values (%d, %d), want %d", label, desc, v0, v1, want)
		}
	}
	single(a.put0, "kv0", 1, 10)
	single(a.put1, "kv1", 1, 11)
	pair(a.copy01, 2, 20, "copyTo kv0->kv1")
	single(a.put3, "kv0", 3, 30)
	pair(a.copy10, 4, 40, "copyTo kv1->kv0")
}

// TestCrashMatrixMultiContainerAtomicity is the crash matrix: a calibration
// run counts the workload's IO boundaries, then one run per boundary crashes
// there, recovers from the durable prefix, verifies the invariant, and — to
// cover recovery's own durable side effects (presumed-abort tombstones,
// global-id reseeding) — commits one more cross-container transaction in the
// recovered incarnation, restarts again, and re-verifies everything.
func TestCrashMatrixMultiContainerAtomicity(t *testing.T) {
	for _, grouped := range []bool{false, true} {
		mode := "eager"
		if grouped {
			mode = "grouped"
		}
		t.Run(mode, func(t *testing.T) {
			def := kvDef("kv0", "kv1")

			// Calibration: count the boundaries of a crash-free run.
			calCtr := &crashCounter{crashAt: -1}
			calMem := wal.NewMemStorage()
			db := MustOpen(def, crashCfg(&crashStorage{inner: calMem, ctr: calCtr}, grouped))
			acks := runCrashScript(db)
			if !(acks.put0 && acks.put1 && acks.copy01 && acks.put3 && acks.copy10) {
				t.Fatalf("crash-free run did not acknowledge every op: %+v", acks)
			}
			if grouped {
				// Acceptance: 2PC prepare and decision records went through
				// each container's group committer.
				for _, gs := range db.GroupCommitStats() {
					if gs.Records == 0 {
						t.Fatalf("container %d flushed no 2PC records through its group committer", gs.Container)
					}
				}
			}
			db.Close()
			total := calCtr.ops.Load()
			if total < 8 {
				t.Fatalf("calibration run produced only %d IO boundaries", total)
			}

			for crashAt := int64(0); crashAt <= total; crashAt++ {
				mem := wal.NewMemStorage()
				ctr := &crashCounter{crashAt: crashAt}
				db := MustOpen(def, crashCfg(&crashStorage{inner: mem, ctr: ctr}, grouped))
				acks := runCrashScript(db)
				db.Close()

				// The machine dies: only fsynced bytes survive.
				crashed := mem.CrashCopy()
				label := fmt.Sprintf("%s crashAt=%d", mode, crashAt)
				db2 := MustOpen(def, crashCfg(crashed, grouped))
				if _, err := db2.Recover(); err != nil {
					t.Fatalf("%s: Recover: %v", label, err)
				}
				assertCrashInvariants(t, db2, acks, label)

				// Second incarnation: the recovered database must serve new
				// multi-container transactions (global ids reseeded past the
				// log's)…
				if _, err := db2.Execute("kv0", "copyTo", "kv1", int64(5), int64(50)); err != nil {
					t.Fatalf("%s: post-recovery copyTo: %v", label, err)
				}
				db2.Close()

				// …and a further restart must preserve both the original
				// invariant and the new commit (tombstoned presumed aborts
				// stay aborted; the fresh decision is not confused with any
				// stale undecided prepare).
				db3 := MustOpen(def, crashCfg(crashed, grouped))
				if _, err := db3.Recover(); err != nil {
					t.Fatalf("%s: second Recover: %v", label, err)
				}
				assertCrashInvariants(t, db3, acks, label+" (restart 2)")
				if v, present := readV(t, db3, "kv0", 5); !present || v != 50 {
					t.Fatalf("%s: post-recovery commit lost on kv0: (%d, %v)", label, v, present)
				}
				if v, present := readV(t, db3, "kv1", 5); !present || v != 50 {
					t.Fatalf("%s: post-recovery commit lost on kv1: (%d, %v)", label, v, present)
				}
				db3.Close()
			}
		})
	}
}

// ckptCrashCfg is crashCfg with a tiny segment size so checkpoints have
// sealed segments to truncate, making the matrix enumerate the truncation IO
// boundaries (DeleteSegment, checkpoint prune) as well.
func ckptCrashCfg(storage wal.Storage, grouped bool) Config {
	cfg := crashCfg(storage, grouped)
	cfg.Durability.SegmentSize = 192
	return cfg
}

// ckptScriptAcks records which ops of the checkpoint crash script were
// acknowledged. Checkpoints change no observable state, so their own acks
// (ck1, ck2) carry no invariant — they only mark whether truncation may have
// run.
type ckptScriptAcks struct {
	put0, put1, copy01, put3, copy10, put5 bool
	ck1, ck2                               bool
	fill                                   [8]bool // filler puts (see runCkptScript)
}

// runCkptScript is the crash script with checkpoint boundaries folded in:
// a checkpoint after the first 2PC (so its records are truncation
// candidates) and another after the second, with single- and multi-container
// commits on both sides.
func runCkptScript(db *Database) ckptScriptAcks {
	var a ckptScriptAcks
	exec := func(reactor, proc string, args ...any) bool {
		_, err := db.Execute(reactor, proc, args...)
		return err == nil
	}
	a.put0 = exec("kv0", "put", int64(1), int64(10))
	a.put1 = exec("kv1", "put", int64(1), int64(11))
	a.copy01 = exec("kv0", "copyTo", "kv1", int64(2), int64(20)) // 2PC, coordinator c0
	// Filler traffic seals the segments holding copy01's prepare and
	// decision records, so ck1's truncation genuinely deletes them — the
	// matrix then covers mixed-round recoveries (one container checkpointed,
	// the other not) with the decision segment at stake.
	for i := range a.fill {
		r := "kv0"
		if i%2 == 1 {
			r = "kv1"
		}
		a.fill[i] = exec(r, "put", int64(100+i), int64(1000+i))
	}
	a.ck1 = db.Checkpoint() == nil
	a.put3 = exec("kv0", "put", int64(3), int64(30))
	a.copy10 = exec("kv1", "copyTo", "kv0", int64(4), int64(40)) // 2PC, coordinator c1
	a.ck2 = db.Checkpoint() == nil
	a.put5 = exec("kv1", "put", int64(5), int64(51))
	return a
}

// assertCkptCrashInvariants is assertCrashInvariants extended with the
// checkpoint script's trailing op. The checks double as the
// no-resurrection guarantee: a transaction whose records were truncated must
// be exactly as present (decided, acknowledged) or absent (aborted) as its
// ack dictates — recovery reading the checkpoint instead of the deleted
// records must not change the answer.
func assertCkptCrashInvariants(t *testing.T, db *Database, a ckptScriptAcks, label string) {
	t.Helper()
	assertCrashInvariants(t, db, crashScriptAcks{
		put0: a.put0, put1: a.put1, copy01: a.copy01, put3: a.put3, copy10: a.copy10,
	}, label)
	single := func(acked bool, reactor string, k, want int64) {
		v, present := readV(t, db, reactor, k)
		if acked && (!present || v != want) {
			t.Fatalf("%s: acknowledged %s[%d] = (%d, %v), want %d", label, reactor, k, v, present, want)
		}
		if present && v != want {
			t.Fatalf("%s: %s[%d] recovered with wrong value %d, want %d", label, reactor, k, v, want)
		}
	}
	for i, acked := range a.fill {
		r := "kv0"
		if i%2 == 1 {
			r = "kv1"
		}
		single(acked, r, int64(100+i), int64(1000+i))
	}
	single(a.put5, "kv1", 5, 51)
}

// TestCrashMatrixCheckpoint is the checkpoint-aware crash matrix: the
// scripted workload takes two checkpoints between its commits, and the
// matrix kills the machine at every storage IO boundary — which now includes
// crash mid-checkpoint-write (the crash wrapper leaves a torn blob behind,
// forcing recovery's corrupt-checkpoint fallback), crash after the
// checkpoint is durable but before truncation, and crash between individual
// segment deletions. Recovery must always reconstruct exactly the
// acknowledged state; a second incarnation then commits a fresh
// cross-container transaction and takes its own checkpoint, and a third
// restart re-verifies everything — checkpoints taken on recovered state must
// themselves recover.
func TestCrashMatrixCheckpoint(t *testing.T) {
	for _, grouped := range []bool{false, true} {
		mode := "eager"
		if grouped {
			mode = "grouped"
		}
		t.Run(mode, func(t *testing.T) {
			def := kvDef("kv0", "kv1")

			// Calibration: count the boundaries of a crash-free run.
			calCtr := &crashCounter{crashAt: -1}
			calMem := wal.NewMemStorage()
			db := MustOpen(def, ckptCrashCfg(&crashStorage{inner: calMem, ctr: calCtr}, grouped))
			acks := runCkptScript(db)
			if !(acks.put0 && acks.put1 && acks.copy01 && acks.ck1 && acks.put3 && acks.copy10 && acks.ck2 && acks.put5) {
				t.Fatalf("crash-free run did not acknowledge every op: %+v", acks)
			}
			var truncated uint64
			for _, cs := range db.CheckpointStats() {
				truncated += cs.SegmentsDeleted
			}
			if truncated == 0 {
				t.Fatal("crash-free checkpoints truncated no segments; matrix would not cover deletion boundaries")
			}
			db.Close()
			total := calCtr.ops.Load()
			if total < 12 {
				t.Fatalf("calibration run produced only %d IO boundaries", total)
			}

			for crashAt := int64(0); crashAt <= total; crashAt++ {
				mem := wal.NewMemStorage()
				ctr := &crashCounter{crashAt: crashAt}
				db := MustOpen(def, ckptCrashCfg(&crashStorage{inner: mem, ctr: ctr}, grouped))
				acks := runCkptScript(db)
				db.Close()

				// The machine dies: only fsynced bytes survive.
				crashed := mem.CrashCopy()
				label := fmt.Sprintf("%s crashAt=%d", mode, crashAt)
				db2 := MustOpen(def, ckptCrashCfg(crashed, grouped))
				if _, err := db2.Recover(); err != nil {
					t.Fatalf("%s: Recover: %v", label, err)
				}
				assertCkptCrashInvariants(t, db2, acks, label)

				// Second incarnation: serve a fresh multi-container commit and
				// checkpoint the recovered state.
				if _, err := db2.Execute("kv0", "copyTo", "kv1", int64(6), int64(60)); err != nil {
					t.Fatalf("%s: post-recovery copyTo: %v", label, err)
				}
				if err := db2.Checkpoint(); err != nil {
					t.Fatalf("%s: post-recovery Checkpoint: %v", label, err)
				}
				db2.Close()

				// Third incarnation: recovery from the post-recovery
				// checkpoint must preserve the original invariant and the new
				// commit.
				db3 := MustOpen(def, ckptCrashCfg(crashed, grouped))
				if _, err := db3.Recover(); err != nil {
					t.Fatalf("%s: second Recover: %v", label, err)
				}
				assertCkptCrashInvariants(t, db3, acks, label+" (restart 2)")
				for _, r := range []string{"kv0", "kv1"} {
					if v, present := readV(t, db3, r, 6); !present || v != 60 {
						t.Fatalf("%s: post-recovery commit lost on %s: (%d, %v)", label, r, v, present)
					}
				}
				db3.Close()
			}
		})
	}
}

// TestCrashDuringRecoveryTombstoning crashes a second time while recovery is
// appending presumed-abort tombstones: the tombstones themselves go through
// the WAL, so a crash there must leave the next recovery able to resolve the
// same prepares again.
func TestCrashDuringRecoveryTombstoning(t *testing.T) {
	def := kvDef("kv0", "kv1")
	mem := wal.NewMemStorage()
	ctr := &crashCounter{crashAt: -1}
	db := MustOpen(def, crashCfg(&crashStorage{inner: mem, ctr: ctr}, true))
	// Stop IO right before the decision record can become durable: calibrate
	// by running the 2PC once and replaying the boundary count minus one.
	if _, err := db.Execute("kv0", "copyTo", "kv1", int64(2), int64(20)); err != nil {
		t.Fatalf("calibration copyTo: %v", err)
	}
	db.Close()
	total := ctr.ops.Load()

	for crashAt := int64(0); crashAt < total; crashAt++ {
		mem := wal.NewMemStorage()
		db := MustOpen(def, crashCfg(&crashStorage{inner: mem, ctr: &crashCounter{crashAt: crashAt}}, true))
		_, _ = db.Execute("kv0", "copyTo", "kv1", int64(2), int64(20))
		db.Close()
		crashed := mem.CrashCopy()

		// Recovery incarnation whose own IO — the Open-time tail adoption
		// fsync and the tombstone appends — crashes at every point.
		for recCrash := int64(0); ; recCrash++ {
			recMem := crashed.CrashCopy() // fresh independent copy per attempt
			recCtr := &crashCounter{crashAt: recCrash}
			db2, recErr := Open(def, crashCfg(&crashStorage{inner: recMem, ctr: recCtr}, true))
			if recErr == nil {
				_, recErr = db2.Recover()
				db2.Close()
			}
			// Whatever recovery managed to make durable, a final recovery on
			// the survivor must still satisfy the invariant.
			db3 := MustOpen(def, crashCfg(recMem.CrashCopy(), true))
			if _, err := db3.Recover(); err != nil {
				t.Fatalf("crashAt=%d recCrash=%d: final Recover: %v", crashAt, recCrash, err)
			}
			v0, p0 := readV(t, db3, "kv0", 2)
			v1, p1 := readV(t, db3, "kv1", 2)
			if p0 != p1 || (p0 && (v0 != 20 || v1 != 20)) {
				t.Fatalf("crashAt=%d recCrash=%d: partial state kv0=(%d,%v) kv1=(%d,%v)",
					crashAt, recCrash, v0, p0, v1, p1)
			}
			db3.Close()
			if recErr == nil && recCtr.ops.Load() <= recCrash {
				break // recovery ran without hitting the crash point
			}
		}
	}
}

package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"reactdb/internal/wal"
)

// This file is the failover crash matrix: the primary is killed at every one
// of its storage IO boundaries — mid-workload, with two semi-sync replicas
// tailing — and a Supervisor must detect the death by heartbeat, fence the
// corpse, promote the freshest replica, and re-point the survivor. Each
// matrix point then asserts the black-box contract on the promoted primary
// (no acknowledged commit lost, per-container history prefixes, 2PC pairs
// atomic), checks the survivor converges on the same history, re-attaches
// the dead primary's crash-frozen storage as a replica, and finishes with
// the double-restart drill. `make crash-failover` runs exactly these tests.

// supTestOpts: probe fast so a ~40-point matrix stays quick, but require two
// consecutive misses so a single unlucky boundary doesn't depose a primary
// that was still healthy in a calibration run.
func supTestOpts() SupervisorOptions {
	return SupervisorOptions{Interval: time.Millisecond, Misses: 2}
}

// TestCrashFailoverPrimaryKillMatrix is the tentpole matrix. The crash
// counter wedges the primary's storage at each boundary; from that moment
// every append and fsync fails, heartbeats with them, and the supervisor
// must drive the full failover. Because supervisor heartbeats themselves
// consume storage operations, the matrix sweeps the calibration range of
// workload-only boundaries; individual points land on slightly different
// workload positions run to run, which only varies WHERE the kill lands —
// every run is judged against its own acknowledgment record.
func TestCrashFailoverPrimaryKillMatrix(t *testing.T) {
	def := kvDef("kv0", "kv1")

	// Calibration: count the primary's storage boundaries over the scripted
	// workload with no supervisor probing.
	calibrate := func() int64 {
		mem := wal.NewMemStorage()
		ctr := &crashCounter{crashAt: -1}
		primary := MustOpen(def, replPrimaryCfg(&crashStorage{inner: mem, ctr: ctr}))
		repA, err := OpenReplica(primary, ReplicaOptions{Ack: AckSemiSync, Storage: wal.NewMemStorage()})
		if err != nil {
			t.Fatalf("calibration OpenReplica: %v", err)
		}
		repB, err := OpenReplica(primary, ReplicaOptions{Ack: AckSemiSync, Storage: wal.NewMemStorage()})
		if err != nil {
			t.Fatalf("calibration OpenReplica B: %v", err)
		}
		ops := append(runReplPhase1(primary), runReplPhase2(primary)...)
		for _, op := range ops {
			if !op.acked {
				t.Fatalf("crash-free run did not acknowledge every op: %+v", ops)
			}
		}
		repA.Close()
		repB.Close()
		primary.Close()
		return ctr.ops.Load()
	}
	total := calibrate()
	if total < 10 {
		t.Fatalf("calibration produced only %d primary IO boundaries", total)
	}

	for crashAt := int64(0); crashAt <= total; crashAt++ {
		label := fmt.Sprintf("failover crashAt=%d", crashAt)
		mem := wal.NewMemStorage()
		ctr := &crashCounter{crashAt: crashAt}
		old := MustOpen(def, replPrimaryCfg(&crashStorage{inner: mem, ctr: ctr}))
		repA, err := OpenReplica(old, ReplicaOptions{Ack: AckSemiSync, Storage: wal.NewMemStorage()})
		if err != nil {
			t.Fatalf("%s: OpenReplica A: %v", label, err)
		}
		repB, err := OpenReplica(old, ReplicaOptions{Ack: AckSemiSync, Storage: wal.NewMemStorage()})
		if err != nil {
			t.Fatalf("%s: OpenReplica B: %v", label, err)
		}
		sup := NewSupervisor(old, []*Replica{repA, repB}, supTestOpts())
		sup.Start()

		// The workload races the kill: ops past the crash point fail and are
		// recorded unacknowledged. The dead primary's crash-frozen bytes are
		// captured before anything else can touch them.
		ops := append(runReplPhase1(old), runReplPhase2(old)...)
		oldBytes := mem.CrashCopy()

		// The supervisor must depose the primary on its own: the wedged
		// storage fails heartbeats even if every workload op happened to land
		// before the crash point.
		waitFor(t, replicaWait, func() bool { return sup.Stats().Failovers >= 1 })
		sup.Stop()

		promoted := sup.Primary()
		if promoted == old {
			t.Fatalf("%s: failover did not install a new primary", label)
		}
		if got := promoted.Epoch(); got != 1 {
			t.Fatalf("%s: promoted primary at epoch %d, want 1", label, got)
		}
		if !old.Fenced() {
			t.Fatalf("%s: deposed primary not fenced", label)
		}
		// A zombie write on the deposed primary must be rejected — by the
		// fence, or by its already-wedged log; never acknowledged.
		if _, err := old.Execute("kv0", "put", int64(900), int64(9000)); err == nil {
			t.Fatalf("%s: deposed primary acknowledged a zombie write", label)
		}

		// Black-box check on the new primary: every acknowledged commit
		// present, per-container prefixes, 2PC pairs atomic.
		assertReplPrefix(t, promoted, ops, true, true, label)

		// The new primary serves a fresh multi-container commit, with the
		// re-pointed survivor acknowledging it semi-sync.
		survivors := sup.Replicas()
		if len(survivors) != 1 {
			t.Fatalf("%s: %d survivors after failover, want 1", label, len(survivors))
		}
		if _, err := promoted.Execute("kv0", "copyTo", "kv1", int64(7), int64(70)); err != nil {
			t.Fatalf("%s: post-failover copyTo: %v", label, err)
		}
		surv := survivors[0]
		if err := surv.WaitCaughtUp(replicaWait); err != nil {
			t.Fatalf("%s: survivor catch-up: %v", label, err)
		}
		if v, p := readReplicaV(t, surv, "kv0", 7); !p || v != 70 {
			t.Fatalf("%s: survivor kv0[7] = (%d, %v), want 70", label, v, p)
		}
		assertReplPrefix(t, surv.Database(), ops, true, true, label+" (survivor)")
		surv.Close()

		// Re-attach the dead primary's crash-frozen storage as a replica of
		// the new primary: divergence repair must unwind its unacknowledged
		// suffix and converge on the promoted history.
		zrep, err := ReattachStorage(oldBytes, promoted, ReplicaOptions{})
		if err != nil {
			t.Fatalf("%s: reattach old primary storage: %v", label, err)
		}
		if err := zrep.WaitCaughtUp(replicaWait); err != nil {
			t.Fatalf("%s: reattached replica catch-up: %v", label, err)
		}
		if v, p := readReplicaV(t, zrep, "kv0", 7); !p || v != 70 {
			t.Fatalf("%s: reattached kv0[7] = (%d, %v), want 70", label, v, p)
		}
		assertReplPrefix(t, zrep.Database(), ops, true, true, label+" (reattached)")
		zrep.Close()

		// Double-restart drill on the promoted storage: the epoch state and
		// history must survive a clean restart and another recovery.
		cfg2 := promoted.Config()
		promoted.Close()
		db2 := MustOpen(def, cfg2)
		if _, err := db2.Recover(); err != nil {
			t.Fatalf("%s: restart Recover: %v", label, err)
		}
		if got := db2.Epoch(); got != 1 {
			t.Fatalf("%s: restarted primary at epoch %d, want 1", label, got)
		}
		assertReplPrefix(t, db2, ops, true, true, label+" (restart)")
		for _, r := range []string{"kv0", "kv1"} {
			if v, p := readV(t, db2, r, 7); !p || v != 70 {
				t.Fatalf("%s: post-failover commit lost on %s after restart: (%d, %v)", label, r, v, p)
			}
		}
		db2.Close()
		old.Close()
	}
}

// TestCrashFailoverZombieFence proves the fence does the work, both ways.
// The positive arm runs a planned switchover on a LIVE primary: the fence
// must reject its writes with ErrFenced at the WAL layer, immediately and
// across a restart of the zombie (the durable fence — storage-level STONITH).
// The ablation arm repeats the scenario WITHOUT fencing and demonstrates the
// exact anomaly the fence exists to prevent: the unfenced zombie
// acknowledges a write after promotion, and that acknowledged write is not
// on the new primary — a lost ack. Remove the fence from Failover and the
// positive arm fails the same way.
func TestCrashFailoverZombieFence(t *testing.T) {
	def := kvDef("kv0", "kv1")

	// Positive arm: supervised failover fences the live primary.
	memA := wal.NewMemStorage()
	a := MustOpen(def, crashCfg(memA, true))
	rep, err := OpenReplica(a, ReplicaOptions{Ack: AckSemiSync, Storage: wal.NewMemStorage()})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	if !exec1(a, "kv0", "put", int64(1), int64(10)) || !exec1(a, "kv0", "copyTo", "kv1", int64(2), int64(20)) {
		t.Fatal("seed writes failed")
	}
	sup := NewSupervisor(a, []*Replica{rep}, supTestOpts())
	promoted, err := sup.Failover()
	if err != nil {
		t.Fatalf("manual Failover: %v", err)
	}
	if !a.Fenced() || a.Epoch() != 0 {
		t.Fatalf("old primary fenced=%v epoch=%d, want fenced at epoch 0", a.Fenced(), a.Epoch())
	}
	if promoted.Epoch() != 1 || promoted.Fenced() {
		t.Fatalf("promoted epoch=%d fenced=%v, want epoch 1 unfenced", promoted.Epoch(), promoted.Fenced())
	}
	if _, err := a.Execute("kv0", "put", int64(3), int64(30)); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie write error = %v, want ErrFenced", err)
	}
	// The new primary serves reads of the old history and fresh writes.
	if v, p := readV(t, promoted, "kv0", 1); !p || v != 10 {
		t.Fatalf("promoted kv0[1] = (%d, %v), want 10", v, p)
	}
	if !exec1(promoted, "kv0", "put", int64(4), int64(40)) {
		t.Fatal("write on promoted primary failed")
	}

	// Restart the zombie over its own storage: the durable fence must hold.
	a.Close()
	a2 := MustOpen(def, crashCfg(memA, true))
	if _, err := a2.Recover(); err != nil {
		t.Fatalf("zombie restart Recover: %v", err)
	}
	if !a2.Fenced() {
		t.Fatal("restarted zombie is not fenced — the fence never became durable")
	}
	if _, err := a2.Execute("kv0", "put", int64(5), int64(50)); !errors.Is(err, ErrFenced) {
		t.Fatalf("restarted zombie write error = %v, want ErrFenced", err)
	}
	a2.Close()

	// The fenced storage re-joins the cluster as a replica (fence state
	// untouched — only a promotion with a high enough epoch may lift it).
	zrep, err := ReattachStorage(memA, promoted, ReplicaOptions{})
	if err != nil {
		t.Fatalf("reattach fenced storage: %v", err)
	}
	if err := zrep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	if v, p := readReplicaV(t, zrep, "kv0", 4); !p || v != 40 {
		t.Fatalf("reattached kv0[4] = (%d, %v), want 40", v, p)
	}
	zrep.Close()
	promoted.Close()

	// Ablation arm: promotion WITHOUT fencing. The zombie keeps
	// acknowledging writes (the replica's detach degraded it to async), and
	// the acknowledged write is lost from the promoted primary's history —
	// the anomaly a fenced failover makes impossible.
	b := MustOpen(def, crashCfg(wal.NewMemStorage(), true))
	repB, err := OpenReplica(b, ReplicaOptions{Ack: AckSemiSync, Storage: wal.NewMemStorage()})
	if err != nil {
		t.Fatalf("ablation OpenReplica: %v", err)
	}
	if !exec1(b, "kv0", "put", int64(1), int64(10)) {
		t.Fatal("ablation seed write failed")
	}
	promotedB, err := PromoteReplica(repB, 1) // no Fence(b, ...) — the ablation
	if err != nil {
		t.Fatalf("ablation promote: %v", err)
	}
	if !exec1(b, "kv0", "put", int64(6), int64(60)) {
		t.Fatal("unfenced zombie refused the write; expected it to acknowledge")
	}
	if _, p := readV(t, promotedB, "kv0", 6); p {
		t.Fatal("zombie write visible on the promoted primary — test premise broken")
	}
	// kv0[6] was ACKNOWLEDGED by the zombie yet exists only there: any
	// client routed to the new primary has lost an acked commit.
	b.Close()
	promotedB.Close()
}

// TestCrashFailoverFileStorageShipping runs the whole pipeline — ship,
// mirror, semi-sync ack, promote, re-attach — over real files in two
// directories, then restarts the promoted primary from disk. This is the
// deployment shape: primary and replica on separate filesystems, failover by
// opening the replica's directory.
func TestCrashFailoverFileStorageShipping(t *testing.T) {
	def := kvDef("kv0", "kv1")
	dirA, dirB := t.TempDir(), t.TempDir()
	fsA := wal.NewFileStorage(dirA)

	primary := MustOpen(def, crashCfg(fsA, true))
	for i := int64(0); i < 8; i++ {
		if !exec1(primary, "kv0", "put", i, 100+i) || !exec1(primary, "kv1", "put", i, 200+i) {
			t.Fatalf("seed put %d failed", i)
		}
	}
	// Checkpoint before the replica attaches so bootstrap exercises the
	// file-to-file checkpoint blob copy, not just log shipping.
	if err := primary.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	rep, err := OpenReplica(primary, ReplicaOptions{Ack: AckSemiSync, Storage: wal.NewFileStorage(dirB)})
	if err != nil {
		t.Fatalf("OpenReplica over files: %v", err)
	}
	for i := int64(8); i < 16; i++ {
		if !exec1(primary, "kv0", "put", i, 100+i) || !exec1(primary, "kv1", "copyTo", "kv0", 1000+i, 500+i) {
			t.Fatalf("live put %d failed", i)
		}
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}

	// Fence the primary (planned switchover), then promote the replica's
	// directory.
	if err := primary.Fence(1); err != nil {
		t.Fatalf("Fence: %v", err)
	}
	promoted, err := PromoteReplica(rep, 1)
	if err != nil {
		t.Fatalf("promote file replica: %v", err)
	}
	primary.Close()
	for i := int64(0); i < 16; i++ {
		if v, p := readV(t, promoted, "kv0", i); !p || v != 100+i {
			t.Fatalf("promoted kv0[%d] = (%d, %v), want %d", i, v, p, 100+i)
		}
	}
	if !exec1(promoted, "kv0", "copyTo", "kv1", int64(77), int64(770)) {
		t.Fatal("write on promoted file primary failed")
	}

	// Re-attach the old directory as a replica of the new primary.
	zrep, err := ReattachStorage(fsA, promoted, ReplicaOptions{})
	if err != nil {
		t.Fatalf("reattach dirA: %v", err)
	}
	if err := zrep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	if v, p := readReplicaV(t, zrep, "kv0", 77); !p || v != 770 {
		t.Fatalf("reattached kv0[77] = (%d, %v), want 770", v, p)
	}
	zrep.Close()

	// Restart the promoted primary from its files.
	cfg2 := promoted.Config()
	promoted.Close()
	db2 := MustOpen(def, cfg2)
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("file restart Recover: %v", err)
	}
	if db2.Epoch() != 1 {
		t.Fatalf("restarted file primary at epoch %d, want 1", db2.Epoch())
	}
	for _, r := range []string{"kv0", "kv1"} {
		if v, p := readV(t, db2, r, 77); !p || v != 770 {
			t.Fatalf("restarted %s[77] = (%d, %v), want 770", r, v, p)
		}
	}
	db2.Close()
}

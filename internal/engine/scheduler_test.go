package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/rel"
	"reactdb/internal/vclock"
)

// gateType builds a reactor type whose "wait" procedure blocks until the
// returned gate channel is closed, letting tests hold an executor core at a
// known point while they fill its request queue.
func gateType() (*core.Type, chan struct{}, *atomic.Int64) {
	gate := make(chan struct{})
	var started atomic.Int64
	balance := rel.MustSchema("balance",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "amount", Type: rel.Float64}}, "id")
	t := core.NewType("Gate").AddRelation(balance)
	t.AddProcedure("wait", func(ctx core.Context, args core.Args) (any, error) {
		started.Add(1)
		<-gate
		return nil, nil
	})
	t.AddProcedure("noop", func(ctx core.Context, args core.Args) (any, error) {
		return nil, nil
	})
	return t, gate, &started
}

func openGate(t *testing.T, cfg Config) (*Database, func(), *atomic.Int64) {
	t.Helper()
	typ, gate, started := gateType()
	def := core.NewDatabaseDef().MustAddType(typ)
	def.MustDeclareReactors("Gate", "g0")
	db, err := Open(def, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	openGate := sync.OnceFunc(func() { close(gate) })
	// Open the gate before closing the database so a failing test cannot
	// deadlock Close waiting on gated transactions.
	t.Cleanup(db.Close)
	t.Cleanup(openGate)
	return db, openGate, started
}

func waitFor(t *testing.T, deadline time.Duration, cond func() bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", deadline)
}

func TestFailFastAdmissionReturnsErrOverloaded(t *testing.T) {
	cfg := Config{
		Containers:            1,
		ExecutorsPerContainer: 1,
		QueueDepth:            2,
		Admission:             AdmissionFail,
	}
	db, openGate, started := openGate(t, cfg)

	// Occupy the single executor core.
	results := make(chan error, 32)
	go func() { _, err := db.Execute("g0", "wait"); results <- err }()
	waitFor(t, 5*time.Second, func() bool { return started.Load() == 1 })

	// Flood the executor: one request is running, one may be in the run
	// loop's hand, QueueDepth more can wait; the rest must be rejected.
	const flood = 20
	for i := 0; i < flood; i++ {
		go func() { _, err := db.Execute("g0", "wait"); results <- err }()
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, qs := range db.QueueStats() {
			if qs.Rejected > 0 {
				return true
			}
		}
		return false
	})

	openGate()
	var rejected, completed int
	for i := 0; i < flood+1; i++ {
		select {
		case err := <-results:
			switch {
			case err == nil:
				completed++
			case errors.Is(err, ErrOverloaded):
				rejected++
			default:
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for results (%d completed, %d rejected)", completed, rejected)
		}
	}
	if rejected == 0 {
		t.Fatal("expected at least one ErrOverloaded rejection")
	}
	if completed == 0 {
		t.Fatal("expected admitted requests to complete")
	}
	qs := db.QueueStats()[0]
	if qs.Rejected != int64(rejected) {
		t.Fatalf("QueueStats.Rejected = %d, want %d", qs.Rejected, rejected)
	}
	if qs.Enqueued != int64(completed) {
		t.Fatalf("QueueStats.Enqueued = %d, want %d", qs.Enqueued, completed)
	}
}

func TestBlockingAdmissionAppliesBackpressure(t *testing.T) {
	cfg := Config{
		Containers:            1,
		ExecutorsPerContainer: 1,
		QueueDepth:            1,
		Admission:             AdmissionBlock,
	}
	db, openGate, started := openGate(t, cfg)

	const clients = 8
	results := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() { _, err := db.Execute("g0", "wait"); results <- err }()
	}
	// All clients block (running, queued, or waiting for a queue slot); none
	// may be rejected under the blocking policy.
	waitFor(t, 5*time.Second, func() bool { return started.Load() >= 1 })
	openGate()
	for i := 0; i < clients; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("blocking admission must not fail requests: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for blocked clients to finish")
		}
	}
	qs := db.QueueStats()[0]
	if qs.Rejected != 0 {
		t.Fatalf("QueueStats.Rejected = %d, want 0", qs.Rejected)
	}
	if qs.Enqueued != clients {
		t.Fatalf("QueueStats.Enqueued = %d, want %d", qs.Enqueued, clients)
	}
	if qs.Wait.Count != clients {
		t.Fatalf("wait histogram count = %d, want %d", qs.Wait.Count, clients)
	}
}

func TestQueueWaitAndDepthStatsPopulated(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(2)
	db := openAccounts(t, 4, 100, cfg)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := db.Execute(accountNames(4)[c], "credit", 1.0); err != nil {
					t.Errorf("credit: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	var enq, waits int64
	for _, qs := range db.QueueStats() {
		enq += qs.Enqueued
		waits += qs.Wait.Count
		if qs.Rejected != 0 {
			t.Fatalf("unexpected rejections: %+v", qs)
		}
	}
	if enq != 100 {
		t.Fatalf("total enqueued = %d, want 100", enq)
	}
	if waits != 100 {
		t.Fatalf("total wait observations = %d, want 100", waits)
	}
}

func TestDirectDispatchStillWorks(t *testing.T) {
	cfg := NewSharedNothing(2)
	cfg.Dispatch = DispatchDirect
	db := openAccounts(t, 4, 100, cfg)
	if _, err := db.Execute("acct-0", "transfer", "acct-1", 30.0); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if got := balanceOf(t, db, "acct-0"); got != 70 {
		t.Fatalf("src balance = %v, want 70", got)
	}
	if got := balanceOf(t, db, "acct-1"); got != 130 {
		t.Fatalf("dst balance = %v, want 130", got)
	}
	for _, qs := range db.QueueStats() {
		if qs.Enqueued != 0 || qs.Depth != 0 {
			t.Fatalf("direct dispatch must not touch queues: %+v", qs)
		}
	}
}

func TestExecuteAfterCloseFailsCleanly(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(1)
	db := openAccounts(t, 2, 100, cfg)
	db.Close()
	if _, err := db.Execute("acct-0", "credit", 1.0); err == nil {
		t.Fatal("Execute after Close should fail under queued dispatch")
	}
}

func TestGroupCommitCorrectnessAndStats(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(2)
	cfg.GroupCommit = GroupCommitConfig{Enabled: true, MaxBatch: 8, Window: 200 * time.Microsecond}
	db := openAccounts(t, 8, 100, cfg)

	const clients, perClient = 8, 20
	var wg sync.WaitGroup
	var okCount atomic.Int64
	names := accountNames(8)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				_, err := db.Execute(names[c], "credit", 1.0)
				switch {
				case err == nil:
					okCount.Add(1)
				case errors.Is(err, ErrConflict):
				default:
					t.Errorf("credit: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// Distinct accounts: no conflicts expected, every credit must commit and
	// be visible.
	if okCount.Load() != clients*perClient {
		t.Fatalf("committed %d credits, want %d", okCount.Load(), clients*perClient)
	}
	var total float64
	for _, n := range names {
		total += balanceOf(t, db, n)
	}
	if want := float64(8*100 + clients*perClient); total != want {
		t.Fatalf("total balance = %v, want %v", total, want)
	}

	gcs := db.GroupCommitStats()[0]
	if gcs.Txns != clients*perClient {
		t.Fatalf("group-commit txns = %d, want %d", gcs.Txns, clients*perClient)
	}
	if gcs.Batches == 0 || gcs.Batches > gcs.Txns {
		t.Fatalf("implausible batch count %d for %d txns", gcs.Batches, gcs.Txns)
	}
	if gcs.Largest > 8 {
		t.Fatalf("largest batch %d exceeds MaxBatch 8", gcs.Largest)
	}
	if gcs.BatchSize.Count != int64(gcs.Batches) {
		t.Fatalf("batch-size histogram count %d != batches %d", gcs.BatchSize.Count, gcs.Batches)
	}
}

func TestGroupCommitConflictsStillDetected(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(2)
	cfg.GroupCommit = GroupCommitConfig{Enabled: true, MaxBatch: 16, Window: 200 * time.Microsecond}
	db := openAccounts(t, 2, 1000, cfg)

	const clients, perClient = 8, 15
	var wg sync.WaitGroup
	var committed atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				_, err := db.Execute("acct-0", "credit", 1.0)
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, ErrConflict):
				default:
					t.Errorf("credit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Serializability: the final balance reflects exactly the committed
	// credits, whatever interleaving group commit produced.
	if got, want := balanceOf(t, db, "acct-0"), 1000+float64(committed.Load()); got != want {
		t.Fatalf("balance = %v, want %v (%d committed)", got, want, committed.Load())
	}
	if committed.Load() == 0 {
		t.Fatal("no transaction committed under contention")
	}
}

// TestQueuedGroupCommitOutperformsDirect pins the headline property of this
// scheduler: under concurrent clients and a non-trivial modeled log-write
// cost, the queued scheduler with group commit sustains higher throughput
// than direct dispatch, which pays the full log write on the executor core
// for every transaction.
func TestQueuedGroupCommitOutperformsDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short mode")
	}
	costs := vclock.Costs{Processing: 20 * time.Microsecond, LogWrite: 800 * time.Microsecond}

	// Each mode gets the best of three measurement windows so one noisy
	// window on an oversubscribed CI host cannot fail the comparison.
	run := func(cfg Config) int64 {
		cfg.Costs = costs
		db := openAccounts(t, 8, 1e9, cfg)
		names := accountNames(8)
		const clients = 8
		var best int64
		for round := 0; round < 3; round++ {
			window := 200 * time.Millisecond
			var committed atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := db.Execute(names[c], "credit", 1.0); err == nil {
							committed.Add(1)
						}
					}
				}(c)
			}
			time.Sleep(window)
			close(stop)
			wg.Wait()
			if committed.Load() > best {
				best = committed.Load()
			}
		}
		return best
	}

	direct := NewSharedEverythingWithAffinity(2)
	direct.Dispatch = DispatchDirect
	directCommitted := run(direct)

	queued := NewSharedEverythingWithAffinity(2)
	queued.GroupCommit = GroupCommitConfig{Enabled: true, MaxBatch: 32, Window: 300 * time.Microsecond}
	queuedCommitted := run(queued)

	t.Logf("direct dispatch: %d committed; queued+group-commit: %d committed", directCommitted, queuedCommitted)
	if float64(queuedCommitted) < 1.2*float64(directCommitted) {
		t.Fatalf("queued scheduler with group commit should outperform direct dispatch: %d vs %d",
			queuedCommitted, directCommitted)
	}
}

func TestSchedulerConfigValidation(t *testing.T) {
	cfg := Config{}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.Dispatch != DispatchQueued {
		t.Fatalf("default dispatch = %q, want %q", cfg.Dispatch, DispatchQueued)
	}
	if cfg.QueueDepth != 256 {
		t.Fatalf("default queue depth = %d, want 256", cfg.QueueDepth)
	}
	if cfg.Admission != AdmissionBlock {
		t.Fatalf("default admission = %q, want %q", cfg.Admission, AdmissionBlock)
	}

	bad := Config{Dispatch: "bogus"}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate should reject unknown dispatch mode")
	}
	bad = Config{Admission: "bogus"}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate should reject unknown admission policy")
	}

	gc := Config{GroupCommit: GroupCommitConfig{Enabled: true}}
	if err := gc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if gc.GroupCommit.MaxBatch != 32 || gc.GroupCommit.Window != 200*time.Microsecond {
		t.Fatalf("group-commit defaults not applied: %+v", gc.GroupCommit)
	}

	st := Config{Steal: StealConfig{Enabled: true}}
	if err := st.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if st.Steal.Ratio != 2 || st.Steal.MinVictimDepth != 2 {
		t.Fatalf("steal defaults not applied: %+v", st.Steal)
	}
	bad = Config{Dispatch: DispatchDirect, Steal: StealConfig{Enabled: true}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate should reject stealing under direct dispatch")
	}

	ad := Config{AdaptiveDepth: AdaptiveDepthConfig{Enabled: true}}
	if err := ad.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ad.AdaptiveDepth.TargetP99 != 2*time.Millisecond || ad.AdaptiveDepth.Floor != 2 ||
		ad.AdaptiveDepth.Ceiling != 256 || ad.AdaptiveDepth.Interval != 5*time.Millisecond {
		t.Fatalf("adaptive-depth defaults not applied: %+v", ad.AdaptiveDepth)
	}
	bad = Config{Dispatch: DispatchDirect, AdaptiveDepth: AdaptiveDepthConfig{Enabled: true}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate should reject adaptive depth under direct dispatch")
	}
	bad = Config{AdaptiveDepth: AdaptiveDepthConfig{Enabled: true, Floor: 16, Ceiling: 8}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate should reject Floor > Ceiling")
	}
}

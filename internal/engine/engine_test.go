package engine

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/rel"
	"reactdb/internal/vclock"
)

// accountType builds a small "Account" reactor type used throughout the engine
// tests: a single-row balance relation plus procedures exercising reads,
// writes, asynchronous calls, aborts, and dangerous call structures.
func accountType() *core.Type {
	balance := rel.MustSchema("balance",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "amount", Type: rel.Float64}}, "id")
	history := rel.MustSchema("history",
		[]rel.Column{
			{Name: "seq", Type: rel.Int64},
			{Name: "delta", Type: rel.Float64},
		}, "seq")

	t := core.NewType("Account").AddRelation(balance).AddRelation(history)

	t.AddProcedure("get_balance", func(ctx core.Context, args core.Args) (any, error) {
		row, err := ctx.Get("balance", int64(0))
		if err != nil {
			return nil, err
		}
		if row == nil {
			return float64(0), nil
		}
		return row.Float64(1), nil
	})

	t.AddProcedure("credit", func(ctx core.Context, args core.Args) (any, error) {
		amt := args.Float64(0)
		row, err := ctx.Get("balance", int64(0))
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, core.Abortf("account %s not initialized", ctx.Reactor())
		}
		return nil, ctx.Update("balance", rel.Row{int64(0), row.Float64(1) + amt})
	})

	t.AddProcedure("debit", func(ctx core.Context, args core.Args) (any, error) {
		amt := args.Float64(0)
		row, err := ctx.Get("balance", int64(0))
		if err != nil {
			return nil, err
		}
		if row == nil || row.Float64(1) < amt {
			return nil, core.Abortf("insufficient funds on %s", ctx.Reactor())
		}
		return nil, ctx.Update("balance", rel.Row{int64(0), row.Float64(1) - amt})
	})

	// transfer: asynchronous credit on the destination reactor, local debit.
	t.AddProcedure("transfer", func(ctx core.Context, args core.Args) (any, error) {
		dst := args.String(0)
		amt := args.Float64(1)
		fut, err := ctx.Call(dst, "credit", amt)
		if err != nil {
			return nil, err
		}
		if _, err := ctx.Call(ctx.Reactor(), "debit", amt); err != nil {
			return nil, err
		}
		_, err = fut.Get()
		return nil, err
	})

	// fan_in_same_reactor triggers the dangerous structure of §2.2.4: two
	// asynchronous sub-transactions on the same destination reactor.
	t.AddProcedure("fan_in_same_reactor", func(ctx core.Context, args core.Args) (any, error) {
		dst := args.String(0)
		if _, err := ctx.Call(dst, "credit", 1.0); err != nil {
			return nil, err
		}
		if _, err := ctx.Call(dst, "credit", 1.0); err != nil {
			return nil, err
		}
		return nil, nil
	})

	// audit_total sums balances across the given reactors synchronously.
	t.AddProcedure("audit_total", func(ctx core.Context, args core.Args) (any, error) {
		total := 0.0
		self, err := ctx.Get("balance", int64(0))
		if err != nil {
			return nil, err
		}
		if self != nil {
			total += self.Float64(1)
		}
		for _, other := range args.Strings(0) {
			if other == ctx.Reactor() {
				continue
			}
			v, err := ctx.CallSync(other, "get_balance")
			if err != nil {
				return nil, err
			}
			total += v.(float64)
		}
		return total, nil
	})

	// log_and_fail inserts into history and then aborts, to test rollback of
	// inserts across reactors.
	t.AddProcedure("log_and_fail", func(ctx core.Context, args core.Args) (any, error) {
		dst := args.String(0)
		if err := ctx.Insert("history", rel.Row{int64(1), 5.0}); err != nil {
			return nil, err
		}
		if _, err := ctx.Call(dst, "log_entry", int64(1), 5.0); err != nil {
			return nil, err
		}
		return nil, core.Abortf("deliberate failure")
	})

	t.AddProcedure("log_entry", func(ctx core.Context, args core.Args) (any, error) {
		return nil, ctx.Insert("history", rel.Row{args.Int64(0), args.Float64(1)})
	})

	t.AddProcedure("count_history", func(ctx core.Context, args core.Args) (any, error) {
		n, err := core.CountRows(ctx, "history")
		return int64(n), err
	})

	t.AddProcedure("noop", func(ctx core.Context, args core.Args) (any, error) {
		return nil, nil
	})

	t.AddProcedure("panics", func(ctx core.Context, args core.Args) (any, error) {
		panic("boom")
	})

	t.AddProcedure("self_call", func(ctx core.Context, args core.Args) (any, error) {
		// A direct self-call must be inlined and immediately resolved.
		fut, err := ctx.Call(ctx.Reactor(), "get_balance")
		if err != nil {
			return nil, err
		}
		if !fut.Resolved() {
			return nil, fmt.Errorf("self-call future not resolved synchronously")
		}
		return fut.Get()
	})

	t.AddProcedure("spin_work", func(ctx core.Context, args core.Args) (any, error) {
		ctx.Work(time.Duration(args.Int64(0)) * time.Microsecond)
		return nil, nil
	})

	return t
}

// accountNames returns n account reactor names acct-0 .. acct-n-1.
func accountNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "acct-" + strconv.Itoa(i)
	}
	return names
}

// openAccounts deploys n account reactors under cfg, each preloaded with the
// given balance, with acct-i placed on container i mod Containers.
func openAccounts(t testing.TB, n int, initial float64, cfg Config) *Database {
	t.Helper()
	names := accountNames(n)
	def := core.NewDatabaseDef().MustAddType(accountType())
	def.MustDeclareReactors("Account", names...)
	cfg.Placement = func(reactor string) int {
		var idx int
		_, err := fmt.Sscanf(reactor, "acct-%d", &idx)
		if err != nil {
			return 0
		}
		return idx
	}
	db, err := Open(def, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, name := range names {
		db.MustLoad(name, "balance", rel.Row{int64(0), initial})
	}
	t.Cleanup(db.Close)
	return db
}

func balanceOf(t testing.TB, db *Database, reactor string) float64 {
	t.Helper()
	row, err := db.ReadRow(reactor, "balance", int64(0))
	if err != nil {
		t.Fatalf("ReadRow(%s): %v", reactor, err)
	}
	if row == nil {
		t.Fatalf("balance row missing on %s", reactor)
	}
	return row.Float64(1)
}

func allConfigs(executorsOrContainers int) map[string]Config {
	return map[string]Config{
		"shared-everything-without-affinity": NewSharedEverythingWithoutAffinity(executorsOrContainers),
		"shared-everything-with-affinity":    NewSharedEverythingWithAffinity(executorsOrContainers),
		"shared-nothing":                     NewSharedNothing(executorsOrContainers),
	}
}

func TestExecuteSimpleReadWriteAcrossDeployments(t *testing.T) {
	for name, cfg := range allConfigs(4) {
		t.Run(name, func(t *testing.T) {
			db := openAccounts(t, 8, 100, cfg)
			if _, err := db.Execute("acct-1", "credit", 25.0); err != nil {
				t.Fatalf("credit: %v", err)
			}
			if got := balanceOf(t, db, "acct-1"); got != 125 {
				t.Fatalf("balance = %v, want 125", got)
			}
			v, err := db.Execute("acct-1", "get_balance")
			if err != nil || v.(float64) != 125 {
				t.Fatalf("get_balance = (%v, %v)", v, err)
			}
		})
	}
}

func TestCrossReactorTransferAcrossDeployments(t *testing.T) {
	for name, cfg := range allConfigs(4) {
		t.Run(name, func(t *testing.T) {
			db := openAccounts(t, 8, 100, cfg)
			if _, err := db.Execute("acct-0", "transfer", "acct-5", 40.0); err != nil {
				t.Fatalf("transfer: %v", err)
			}
			if got := balanceOf(t, db, "acct-0"); got != 60 {
				t.Fatalf("source balance = %v, want 60", got)
			}
			if got := balanceOf(t, db, "acct-5"); got != 140 {
				t.Fatalf("destination balance = %v, want 140", got)
			}
		})
	}
}

func TestUserAbortRollsBackAllReactors(t *testing.T) {
	for name, cfg := range allConfigs(4) {
		t.Run(name, func(t *testing.T) {
			db := openAccounts(t, 4, 10, cfg)
			// Debit more than the balance: the local abort must also roll back
			// the already-applied asynchronous credit on the destination.
			_, err := db.Execute("acct-0", "transfer", "acct-2", 1000.0)
			if !core.IsUserAbort(err) {
				t.Fatalf("expected user abort, got %v", err)
			}
			if got := balanceOf(t, db, "acct-2"); got != 10 {
				t.Fatalf("credit leaked to destination on abort: %v", got)
			}
			if got := balanceOf(t, db, "acct-0"); got != 10 {
				t.Fatalf("source modified on abort: %v", got)
			}
		})
	}
}

func TestAbortRollsBackInsertsOnRemoteReactor(t *testing.T) {
	db := openAccounts(t, 4, 10, NewSharedNothing(4))
	_, err := db.Execute("acct-0", "log_and_fail", "acct-3")
	if !core.IsUserAbort(err) {
		t.Fatalf("expected user abort, got %v", err)
	}
	for _, r := range []string{"acct-0", "acct-3"} {
		v, err := db.Execute(r, "count_history")
		if err != nil {
			t.Fatalf("count_history: %v", err)
		}
		if v.(int64) != 0 {
			t.Fatalf("aborted insert visible on %s", r)
		}
	}
}

func TestDangerousStructureAborts(t *testing.T) {
	db := openAccounts(t, 4, 10, NewSharedNothing(4))
	_, err := db.Execute("acct-0", "fan_in_same_reactor", "acct-2")
	if !errors.Is(err, core.ErrDangerousStructure) {
		t.Fatalf("expected dangerous structure abort, got %v", err)
	}
	if got := balanceOf(t, db, "acct-2"); got != 10 {
		t.Fatalf("dangerous transaction leaked state: %v", got)
	}

	// With the safety check disabled (ablation), the same program runs.
	cfg := NewSharedNothing(4)
	cfg.DisableActiveSetCheck = true
	db2 := openAccounts(t, 4, 10, cfg)
	if _, err := db2.Execute("acct-0", "fan_in_same_reactor", "acct-2"); err != nil {
		t.Fatalf("with check disabled the call should succeed, got %v", err)
	}
	if got := balanceOf(t, db2, "acct-2"); got != 12 {
		t.Fatalf("credits not applied with check disabled: %v", got)
	}
}

func TestSelfCallInlining(t *testing.T) {
	db := openAccounts(t, 2, 42, NewSharedNothing(2))
	v, err := db.Execute("acct-1", "self_call")
	if err != nil {
		t.Fatalf("self_call: %v", err)
	}
	if v.(float64) != 42 {
		t.Fatalf("self_call = %v, want 42", v)
	}
}

func TestSynchronousAuditReadsConsistentTotal(t *testing.T) {
	db := openAccounts(t, 6, 50, NewSharedNothing(6))
	v, err := db.Execute("acct-0", "audit_total", accountNames(6))
	if err != nil {
		t.Fatalf("audit_total: %v", err)
	}
	if v.(float64) != 300 {
		t.Fatalf("audit_total = %v, want 300", v)
	}
}

func TestPanicInProcedureBecomesError(t *testing.T) {
	db := openAccounts(t, 2, 10, NewSharedEverythingWithAffinity(2))
	if _, err := db.Execute("acct-0", "panics"); err == nil {
		t.Fatalf("panicking procedure should return an error")
	}
	// The database keeps working afterwards.
	if _, err := db.Execute("acct-0", "credit", 1.0); err != nil {
		t.Fatalf("engine broken after procedure panic: %v", err)
	}
}

func TestUnknownReactorAndProcedure(t *testing.T) {
	db := openAccounts(t, 2, 10, NewSharedNothing(2))
	if _, err := db.Execute("missing", "noop"); !errors.Is(err, core.ErrUnknownReactor) {
		t.Fatalf("expected ErrUnknownReactor, got %v", err)
	}
	if _, err := db.Execute("acct-0", "missing"); !errors.Is(err, core.ErrUnknownProcedure) {
		t.Fatalf("expected ErrUnknownProcedure, got %v", err)
	}
}

// TestMoneyConservedUnderConcurrentLoad is the engine-level serializability
// stress test: concurrent transfers across reactors and containers must
// conserve the total balance under every deployment strategy.
func TestMoneyConservedUnderConcurrentLoad(t *testing.T) {
	const (
		accounts = 12
		workers  = 8
		ops      = 120
		initial  = 1000.0
	)
	for name, cfg := range allConfigs(4) {
		t.Run(name, func(t *testing.T) {
			db := openAccounts(t, accounts, initial, cfg)
			var wg sync.WaitGroup
			var committed atomic.Int64
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						src := (seed*31 + i*17) % accounts
						dst := (seed*13 + i*7 + 1) % accounts
						if src == dst {
							continue
						}
						_, err := db.Execute(
							"acct-"+strconv.Itoa(src), "transfer",
							"acct-"+strconv.Itoa(dst), 1.0)
						if err == nil {
							committed.Add(1)
						} else if !errors.Is(err, ErrConflict) && !core.IsUserAbort(err) {
							t.Errorf("unexpected error: %v", err)
							return
						}
					}
				}(w + 1)
			}
			wg.Wait()
			var total float64
			for i := 0; i < accounts; i++ {
				total += balanceOf(t, db, "acct-"+strconv.Itoa(i))
			}
			if total != accounts*initial {
				t.Fatalf("total balance %v, want %v", total, accounts*initial)
			}
			if committed.Load() == 0 {
				t.Fatalf("no transfers committed")
			}
			dbCommitted, _ := db.Stats()
			if dbCommitted == 0 {
				t.Fatalf("domain commit counters not updated")
			}
		})
	}
}

func TestConflictingTransactionsReportErrConflict(t *testing.T) {
	// Force many concurrent increments of the same account through different
	// containers' executors; some must conflict, none may be lost.
	db := openAccounts(t, 2, 0, NewSharedEverythingWithoutAffinity(4))
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	var committed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := db.Execute("acct-0", "credit", 1.0); err == nil {
					committed.Add(1)
				} else if !errors.Is(err, ErrConflict) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := balanceOf(t, db, "acct-0"); got != float64(committed.Load()) {
		t.Fatalf("balance %v does not match committed count %d", got, committed.Load())
	}
}

func TestProfileComponentsPopulated(t *testing.T) {
	cfg := NewSharedNothing(4)
	cfg.Costs = vclock.Costs{Send: 200 * time.Microsecond, Receive: 400 * time.Microsecond}
	db := openAccounts(t, 4, 100, cfg)
	_, profile, err := db.ExecuteProfiled("acct-0", "transfer", "acct-2", 5.0)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if profile.RemoteCalls != 1 {
		t.Fatalf("RemoteCalls = %d, want 1", profile.RemoteCalls)
	}
	if profile.Cs < 200*time.Microsecond || profile.Cr < 400*time.Microsecond {
		t.Fatalf("communication costs not charged: Cs=%v Cr=%v", profile.Cs, profile.Cr)
	}
	if profile.Containers != 2 {
		t.Fatalf("Containers = %d, want 2", profile.Containers)
	}
	if profile.Total <= 0 || profile.Commit < 0 {
		t.Fatalf("profile durations not populated: %+v", profile)
	}
	if profile.Aborted {
		t.Fatalf("profile should not be marked aborted")
	}
}

func TestRemoteCallsOnlyWhenCrossingContainers(t *testing.T) {
	// In a single-container deployment, cross-reactor calls must be inlined
	// (no remote dispatch, no communication cost).
	cfg := NewSharedEverythingWithAffinity(4)
	cfg.Costs = vclock.Costs{Send: 500 * time.Microsecond, Receive: 500 * time.Microsecond}
	db := openAccounts(t, 4, 100, cfg)
	_, profile, err := db.ExecuteProfiled("acct-0", "transfer", "acct-3", 5.0)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if profile.RemoteCalls != 0 || profile.Cs != 0 || profile.Cr != 0 {
		t.Fatalf("single-container deployment should not dispatch remote calls: %+v", profile)
	}
	if profile.Containers != 1 {
		t.Fatalf("Containers = %d, want 1", profile.Containers)
	}
}

func TestDisableSameContainerInliningForcesDispatch(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(4)
	cfg.DisableSameContainerInlining = true
	db := openAccounts(t, 4, 100, cfg)
	_, profile, err := db.ExecuteProfiled("acct-0", "transfer", "acct-3", 5.0)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if profile.RemoteCalls == 0 {
		t.Fatalf("ablation should force remote dispatch")
	}
	if got := balanceOf(t, db, "acct-3"); got != 105 {
		t.Fatalf("transfer result wrong under ablation: %v", got)
	}
}

func TestRoundRobinRouterSpreadsRootTransactions(t *testing.T) {
	cfg := NewSharedEverythingWithoutAffinity(4)
	db := openAccounts(t, 1, 0, cfg)
	for i := 0; i < 40; i++ {
		if _, err := db.Execute("acct-0", "noop"); err != nil {
			t.Fatalf("noop: %v", err)
		}
	}
	execs := db.Containers()[0].Executors()
	for _, e := range execs {
		if e.Processed() == 0 {
			t.Fatalf("round-robin router left executor %d idle", e.ID())
		}
	}
}

func TestAffinityRouterPinsReactorToOneExecutor(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(4)
	db := openAccounts(t, 1, 0, cfg)
	for i := 0; i < 40; i++ {
		if _, err := db.Execute("acct-0", "noop"); err != nil {
			t.Fatalf("noop: %v", err)
		}
	}
	busy := 0
	for _, e := range db.Containers()[0].Executors() {
		if e.Processed() > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("affinity router used %d executors for one reactor, want 1", busy)
	}
}

func TestDisableCCOverheadPath(t *testing.T) {
	cfg := NewSharedNothing(2)
	cfg.DisableCC = true
	db := openAccounts(t, 2, 0, cfg)
	for i := 0; i < 10; i++ {
		if _, err := db.Execute("acct-0", "noop"); err != nil {
			t.Fatalf("noop with CC disabled: %v", err)
		}
	}
	committed, aborted := db.Stats()
	if committed != 0 || aborted != 0 {
		t.Fatalf("CC-disabled transactions must bypass the commit protocol, got (%d, %d)", committed, aborted)
	}
}

func TestWorkOccupiesVirtualCore(t *testing.T) {
	db := openAccounts(t, 1, 0, NewSharedNothing(1))
	db.ResetExecutorStats()
	start := time.Now()
	if _, err := db.Execute("acct-0", "spin_work", int64(20000)); err != nil { // 20ms
		t.Fatalf("spin_work: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("simulated work finished too fast: %v", elapsed)
	}
	util := db.ExecutorUtilization()[0][0]
	if util <= 0 {
		t.Fatalf("executor utilization not accounted: %v", util)
	}
}

func TestExecuteProfiledLatencyCoversWork(t *testing.T) {
	db := openAccounts(t, 1, 0, NewSharedNothing(1))
	_, profile, err := db.ExecuteProfiled("acct-0", "spin_work", int64(5000))
	if err != nil {
		t.Fatalf("spin_work: %v", err)
	}
	if profile.Total < 5*time.Millisecond {
		t.Fatalf("profile total %v should cover the 5ms of simulated work", profile.Total)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := Config{}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero config should validate with defaults: %v", err)
	}
	if cfg.Containers != 1 || cfg.ExecutorsPerContainer != 1 || cfg.Router != RouterAffinity {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	bad := Config{Router: RouterKind("bogus")}
	if err := bad.Validate(); err == nil {
		t.Fatalf("invalid router kind accepted")
	}
	if cfg.Strategy == "" {
		t.Fatalf("strategy default not applied")
	}
}

func TestPlacementAndAffinityClamping(t *testing.T) {
	cfg := Config{
		Containers:            3,
		ExecutorsPerContainer: 2,
		Placement:             func(string) int { return -7 },
		Affinity:              func(string) int { return 11 },
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.placementFor("x"); got < 0 || got >= 3 {
		t.Fatalf("placement not clamped: %d", got)
	}
	if got := cfg.affinityFor("x"); got < 0 || got >= 2 {
		t.Fatalf("affinity not clamped: %d", got)
	}
}

func TestOpenRejectsInvalidDefinition(t *testing.T) {
	if _, err := Open(core.NewDatabaseDef(), NewSharedNothing(1)); err == nil {
		t.Fatalf("empty definition should be rejected")
	}
}

func TestLoadAndReadRowErrors(t *testing.T) {
	db := openAccounts(t, 2, 10, NewSharedNothing(2))
	if err := db.Load("missing", "balance", rel.Row{int64(0), 1.0}); !errors.Is(err, core.ErrUnknownReactor) {
		t.Fatalf("Load on missing reactor: %v", err)
	}
	if err := db.Load("acct-0", "missing", rel.Row{int64(0), 1.0}); !errors.Is(err, core.ErrUnknownRelation) {
		t.Fatalf("Load on missing relation: %v", err)
	}
	if _, err := db.ReadRow("missing", "balance", int64(0)); !errors.Is(err, core.ErrUnknownReactor) {
		t.Fatalf("ReadRow on missing reactor: %v", err)
	}
	if db.TableLen("acct-0", "balance") != 1 {
		t.Fatalf("TableLen wrong")
	}
	if db.TableLen("missing", "balance") != 0 {
		t.Fatalf("TableLen of missing reactor should be 0")
	}
	if idx, ok := db.ContainerIndexOf("acct-1"); !ok || idx != 1 {
		t.Fatalf("ContainerIndexOf = (%d, %v)", idx, ok)
	}
	if _, ok := db.ContainerIndexOf("missing"); ok {
		t.Fatalf("ContainerIndexOf of missing reactor should report false")
	}
}

func TestEpochAdvancesInBackground(t *testing.T) {
	cfg := NewSharedNothing(1)
	cfg.EpochInterval = 5 * time.Millisecond
	db := openAccounts(t, 1, 0, cfg)
	before := db.Containers()[0].Domain().Epoch()
	time.Sleep(30 * time.Millisecond)
	if after := db.Containers()[0].Domain().Epoch(); after <= before {
		t.Fatalf("epoch did not advance in background: %d -> %d", before, after)
	}
	db.Close()
	// Close is idempotent.
	db.Close()
}

package engine

import (
	"fmt"
	"sync"
	"testing"
)

// openRouterDB deploys a handful of account reactors on a single container
// with the given router and executor count, returning the container.
func openRouterDB(t *testing.T, kind RouterKind, executors, reactors int) (*Database, *Container) {
	t.Helper()
	cfg := Config{Containers: 1, ExecutorsPerContainer: executors, Router: kind}
	db := openAccounts(t, reactors, 100, cfg)
	return db, db.Containers()[0]
}

func TestRoundRobinRouteCyclesThroughExecutors(t *testing.T) {
	const executors = 3
	_, c := openRouterDB(t, RouterRoundRobin, executors, 2)
	for round := 0; round < 4; round++ {
		for want := 0; want < executors; want++ {
			got := c.router.Route("acct-0").ID()
			if got != want {
				t.Fatalf("round %d: Route returned executor %d, want %d (wraparound broken)", round, got, want)
			}
		}
	}
}

func TestRoundRobinWraparoundUnderConcurrentRoute(t *testing.T) {
	const (
		executors  = 4
		goroutines = 8
		perG       = 400
	)
	_, c := openRouterDB(t, RouterRoundRobin, executors, 2)

	counts := make([]int64, executors)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, executors)
			for i := 0; i < perG; i++ {
				local[c.router.Route("acct-1").ID()]++
			}
			mu.Lock()
			for i, n := range local {
				counts[i] += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	// The atomic round-robin counter assigns each of the goroutines*perG
	// tickets exactly once, so the distribution must be perfectly even.
	want := int64(goroutines * perG / executors)
	for i, n := range counts {
		if n != want {
			t.Fatalf("executor %d received %d requests, want exactly %d (counts=%v)", i, n, want, counts)
		}
	}
}

func TestAffinityRouterStableUnderConcurrentRoute(t *testing.T) {
	const (
		executors  = 4
		reactors   = 6
		goroutines = 8
		perG       = 100
	)
	_, c := openRouterDB(t, RouterAffinity, executors, reactors)

	for r := 0; r < reactors; r++ {
		reactor := fmt.Sprintf("acct-%d", r)
		want := c.router.Route(reactor).ID()
		var wg sync.WaitGroup
		errCh := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					if got := c.router.Route(reactor).ID(); got != want {
						errCh <- fmt.Errorf("reactor %s routed to executor %d, expected stable %d", reactor, got, want)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

func TestAffinityRouterHonoursConfiguredAffinity(t *testing.T) {
	cfg := Config{Containers: 1, ExecutorsPerContainer: 4, Router: RouterAffinity}
	cfg.Affinity = func(reactor string) int {
		var idx int
		fmt.Sscanf(reactor, "acct-%d", &idx)
		return idx
	}
	db := openAccounts(t, 4, 100, cfg)
	c := db.Containers()[0]
	for i := 0; i < 4; i++ {
		reactor := fmt.Sprintf("acct-%d", i)
		if got := c.router.Route(reactor).ID(); got != i {
			t.Fatalf("reactor %s routed to executor %d, want %d", reactor, got, i)
		}
	}
}

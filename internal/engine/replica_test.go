package engine

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

const replicaWait = 10 * time.Second

func readReplicaV(t *testing.T, r *Replica, reactor string, k int64) (int64, bool) {
	t.Helper()
	row, err := r.ReadRow(reactor, "store", k)
	if err != nil {
		t.Fatalf("replica ReadRow(%s, %d): %v", reactor, k, err)
	}
	if row == nil {
		return 0, false
	}
	return row.Int64(1), true
}

// TestReplicaShipsCommitsAndServesReads is the basic tentpole path: a replica
// attached to a group-committing primary ships every acknowledged commit,
// applies it, and serves the same reads — while rejecting writes.
func TestReplicaShipsCommitsAndServesReads(t *testing.T) {
	storage := wal.NewMemStorage()
	db := MustOpen(kvDef("kv0"), walCfg(storage))
	t.Cleanup(db.Close)

	rep, err := OpenReplica(db, ReplicaOptions{})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	t.Cleanup(rep.Close)

	const n = 50
	for i := 0; i < n; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(1000+i)); err != nil {
			t.Fatalf("re-put %d: %v", i, err)
		}
	}
	for i := 40; i < 45; i++ {
		if _, err := db.Execute("kv0", "del", int64(i)); err != nil {
			t.Fatalf("del %d: %v", i, err)
		}
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		v, present := readReplicaV(t, rep, "kv0", int64(i))
		switch {
		case i < 10:
			if !present || v != int64(1000+i) {
				t.Fatalf("replica key %d = (%d, %v), want %d", i, v, present, 1000+i)
			}
		case i >= 40 && i < 45:
			if present {
				t.Fatalf("deleted key %d visible on replica with %d", i, v)
			}
		default:
			if !present || v != int64(100+i) {
				t.Fatalf("replica key %d = (%d, %v), want %d", i, v, present, 100+i)
			}
		}
	}

	// Writes are rejected with the sentinel, reads through Execute work.
	if _, err := rep.Execute("kv0", "put", int64(1), int64(2)); !errors.Is(err, ErrReplicaRead) {
		t.Fatalf("replica write error = %v, want ErrReplicaRead", err)
	}
	if v, present := readReplicaV(t, rep, "kv0", 1); !present || v != 1001 {
		t.Fatalf("replica read after rejected write = (%d, %v), want 1001 intact", v, present)
	}

	st := rep.Stats()
	if st.Degraded || st.Err != "" {
		t.Fatalf("replica degraded: %+v", st)
	}
	if st.Applied == 0 || len(st.Shards) != 1 {
		t.Fatalf("stats = %+v, want applied records on one shard", st)
	}
	if sh := st.Shards[0]; sh.Lag != 0 || sh.Applied != sh.PrimaryDurable || sh.Mirrored != sh.PrimaryDurable {
		t.Fatalf("caught-up shard watermarks diverge: %+v", sh)
	}
}

// TestReplicaRequiresWALPrimary pins the configuration contract.
func TestReplicaRequiresWALPrimary(t *testing.T) {
	db := MustOpen(kvDef("kv0"), Config{Containers: 1, ExecutorsPerContainer: 1})
	t.Cleanup(db.Close)
	if _, err := OpenReplica(db, ReplicaOptions{}); err == nil {
		t.Fatal("OpenReplica succeeded on a DurabilityModeled primary")
	}
}

// TestReplicaTwoPCAtomicity ships multi-container transactions: prepares and
// decisions must resolve into group-atomic applies on the replica, and both
// participants' effects must be visible together.
func TestReplicaTwoPCAtomicity(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 4, Window: 200 * time.Microsecond},
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: storage},
		Placement: func(reactor string) int {
			if reactor == "kv0" {
				return 0
			}
			return 1
		},
	}
	db := MustOpen(kvDef("kv0", "kv1"), cfg)
	t.Cleanup(db.Close)

	rep, err := OpenReplica(db, ReplicaOptions{})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	t.Cleanup(rep.Close)

	const n = 30
	for i := 0; i < n; i++ {
		if _, err := db.Execute("kv0", "copyTo", "kv1", int64(i), int64(10+i)); err != nil {
			t.Fatalf("copyTo %d: %v", i, err)
		}
	}
	// A read-only-coordinator group: kv0 reads, kv1 writes.
	if _, err := db.Execute("kv0", "putRemote", "kv1", int64(500), int64(7)); err != nil {
		t.Fatalf("putRemote: %v", err)
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		v0, p0 := readReplicaV(t, rep, "kv0", int64(i))
		v1, p1 := readReplicaV(t, rep, "kv1", int64(i))
		if !p0 || !p1 || v0 != int64(10+i) || v1 != int64(10+i) {
			t.Fatalf("group %d torn on replica: kv0=(%d,%v) kv1=(%d,%v)", i, v0, p0, v1, p1)
		}
	}
	if v, present := readReplicaV(t, rep, "kv1", 500); !present || v != 7 {
		t.Fatalf("read-only-coordinator group write = (%d, %v), want 7", v, present)
	}
}

// TestReplicaBootstrapFromCheckpoint opens the replica only after the primary
// has checkpointed and truncated its log: the checkpoint blob must carry the
// pre-truncation history, and tailing resumes above it.
func TestReplicaBootstrapFromCheckpoint(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := walCfg(storage)
	cfg.Durability.SegmentSize = 1 << 10 // rotate often so truncation bites
	db := MustOpen(kvDef("kv0"), cfg)
	t.Cleanup(db.Close)

	for i := 0; i < 60; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Two rounds: the second can truncate segments below the first's floor.
	for i := 0; i < 2; i++ {
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	sub := storage.Sub("container-0")
	if segs, _ := sub.List(); len(segs) == 0 {
		t.Skip("no segments survived; nothing to tail")
	}

	rep, err := OpenReplica(db, ReplicaOptions{})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	t.Cleanup(rep.Close)
	// Live tail on top of the bootstrapped snapshot.
	for i := 60; i < 80; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("post-bootstrap put %d: %v", i, err)
		}
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if v, present := readReplicaV(t, rep, "kv0", int64(i)); !present || v != int64(100+i) {
			t.Fatalf("key %d = (%d, %v), want %d", i, v, present, 100+i)
		}
	}
	if st := rep.Stats(); st.Err != "" {
		t.Fatalf("replica error after bootstrap: %s", st.Err)
	}
}

// TestReplicaRestartResumesFromMirror closes a replica and reopens it on the
// same mirror storage: it must resume from its local mirror (not re-ship the
// whole log) and catch up with writes that happened while it was down.
func TestReplicaRestartResumesFromMirror(t *testing.T) {
	storage := wal.NewMemStorage()
	db := MustOpen(kvDef("kv0"), walCfg(storage))
	t.Cleanup(db.Close)

	mirror := wal.NewMemStorage()
	rep, err := OpenReplica(db, ReplicaOptions{Storage: mirror})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	rep.Close()

	// The replica is down; the primary keeps committing.
	for i := 20; i < 40; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put while replica down %d: %v", i, err)
		}
	}

	rep2, err := OpenReplica(db, ReplicaOptions{Storage: mirror})
	if err != nil {
		t.Fatalf("reopen replica: %v", err)
	}
	t.Cleanup(rep2.Close)
	if err := rep2.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if v, present := readReplicaV(t, rep2, "kv0", int64(i)); !present || v != int64(100+i) {
			t.Fatalf("key %d = (%d, %v), want %d", i, v, present, 100+i)
		}
	}
}

// TestReplicaPromotion opens the replica's mirror storage as a primary
// database and recovers: the promoted instance must hold exactly the shipped
// history — the mirror is byte-for-byte a valid WAL.
func TestReplicaPromotion(t *testing.T) {
	storage := wal.NewMemStorage()
	db := MustOpen(kvDef("kv0"), walCfg(storage))

	mirror := wal.NewMemStorage()
	rep, err := OpenReplica(db, ReplicaOptions{Storage: mirror})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	rep.Close()
	db.Close()

	promoted := MustOpen(kvDef("kv0"), walCfg(mirror))
	t.Cleanup(promoted.Close)
	if _, err := promoted.Recover(); err != nil {
		t.Fatalf("Recover on promoted mirror: %v", err)
	}
	for i := 0; i < n; i++ {
		if v, present := readV(t, promoted, "kv0", int64(i)); !present || v != int64(100+i) {
			t.Fatalf("promoted key %d = (%d, %v), want %d", i, v, present, 100+i)
		}
	}
	// The promoted primary accepts new writes with TIDs above all replicated
	// history.
	if _, err := promoted.Execute("kv0", "put", int64(0), int64(9)); err != nil {
		t.Fatalf("post-promotion put: %v", err)
	}
	if v, _ := readV(t, promoted, "kv0", 0); v != 9 {
		t.Fatalf("post-promotion write invisible: %d", v)
	}
}

// TestSemiSyncAckedCommitsSurviveReplicaCrash is the acceptance criterion
// "semi-sync never acks a commit the replica can lose": at ANY moment, a
// crash-copy of the replica's mirror (only fsynced bytes survive) promoted to
// a primary must hold every commit the primary acknowledged — no catch-up
// wait, no clean shutdown.
func TestSemiSyncAckedCommitsSurviveReplicaCrash(t *testing.T) {
	storage := wal.NewMemStorage()
	db := MustOpen(kvDef("kv0"), walCfg(storage))
	t.Cleanup(db.Close)

	mirror := wal.NewMemStorage()
	rep, err := OpenReplica(db, ReplicaOptions{Ack: AckSemiSync, Storage: mirror})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	t.Cleanup(rep.Close)

	const n = 25
	for i := 0; i < n; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Replica "crashes" right now: promote whatever is durable in the mirror.
	promoted := MustOpen(kvDef("kv0"), walCfg(mirror.CrashCopy()))
	t.Cleanup(promoted.Close)
	if _, err := promoted.Recover(); err != nil {
		t.Fatalf("Recover on crashed mirror: %v", err)
	}
	for i := 0; i < n; i++ {
		if v, present := readV(t, promoted, "kv0", int64(i)); !present || v != int64(100+i) {
			t.Fatalf("semi-sync acked key %d lost by replica crash: (%d, %v)", i, v, present)
		}
	}
}

// TestSemiSyncDegradesWhenReplicaMirrorFails: a semi-sync replica whose
// mirror device dies must detach (withdrawing its promise) rather than wedge
// the primary's commit path forever.
func TestSemiSyncDegradesWhenReplicaMirrorFails(t *testing.T) {
	storage := wal.NewMemStorage()
	db := MustOpen(kvDef("kv0"), walCfg(storage))
	t.Cleanup(db.Close)

	mirror := wal.NewMemStorage()
	rep, err := OpenReplica(db, ReplicaOptions{Ack: AckSemiSync, Storage: mirror})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	t.Cleanup(rep.Close)
	if _, err := db.Execute("kv0", "put", int64(1), int64(1)); err != nil {
		t.Fatalf("put before failure: %v", err)
	}

	mirror.FailSyncs(errors.New("injected mirror device failure"))
	// Commits must keep completing: the replica detaches on its next mirror
	// attempt and semi-sync degrades to async.
	donePuts := make(chan error, 1)
	go func() {
		var err error
		for i := 2; i < 12 && err == nil; i++ {
			_, err = db.Execute("kv0", "put", int64(i), int64(i))
		}
		donePuts <- err
	}()
	select {
	case err := <-donePuts:
		if err != nil {
			t.Fatalf("puts after mirror failure: %v", err)
		}
	case <-time.After(replicaWait):
		t.Fatal("primary commit path wedged by failed semi-sync replica")
	}
	waitFor(t, replicaWait, func() bool { return rep.Stats().Degraded })
}

// --- Regression: ReplicaStats watermark sanity ------------------------------

// statsSane fails the test if any shard watermark wrapped or regressed below
// the checkpoint floor: Lag must never exceed the primary's durable LSN (an
// unguarded uint64 `durable - applied` wraps to ~2^64 the moment the applied
// watermark passes the sampled durable LSN), and Shipped/Mirrored/Applied must
// never read below Floor after a checkpoint fast-forward.
func statsSane(t *testing.T, st ReplicaStats) {
	t.Helper()
	for _, sh := range st.Shards {
		if sh.Lag > sh.PrimaryDurable {
			t.Fatalf("shard %d Lag wrapped: %+v", sh.Container, sh)
		}
		if sh.Shipped < sh.Floor || sh.Mirrored < sh.Floor || sh.Applied < sh.Floor {
			t.Fatalf("shard %d watermark below floor: %+v", sh.Container, sh)
		}
	}
}

// TestReplicaLagSaneAfterCheckpointFastForward restarts a replica on its old
// mirror after the primary checkpointed and truncated past it: openShard
// fast-forwards through the primary's newest checkpoint, which moves the
// applied watermark to the checkpoint floor in one step. Every Stats snapshot
// from reopen to caught-up must stay sane — this is the signal the wire
// router steers by, so a wrapped Lag or a below-floor Shipped would make it
// route around a healthy replica.
func TestReplicaLagSaneAfterCheckpointFastForward(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := walCfg(storage)
	cfg.Durability.SegmentSize = 1 << 10 // rotate often so truncation bites
	db := MustOpen(kvDef("kv0"), cfg)
	t.Cleanup(db.Close)

	mirror := wal.NewMemStorage()
	rep, err := OpenReplica(db, ReplicaOptions{Storage: mirror})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	// Close the replica, then let the primary checkpoint twice and truncate
	// the segments the mirror would need to resume from.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	rep.Close()
	for i := 20; i < 120; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put while replica down %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}

	rep2, err := OpenReplica(db, ReplicaOptions{Storage: mirror})
	if err != nil {
		t.Fatalf("reopen replica: %v", err)
	}
	t.Cleanup(rep2.Close)
	statsSane(t, rep2.Stats())
	if err := rep2.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	st := rep2.Stats()
	statsSane(t, st)
	for _, sh := range st.Shards {
		if sh.Lag != 0 {
			t.Fatalf("caught-up shard still lags: %+v", sh)
		}
	}
	for i := 0; i < 120; i++ {
		if v, present := readReplicaV(t, rep2, "kv0", int64(i)); !present || v != int64(100+i) {
			t.Fatalf("key %d = (%d, %v), want %d", i, v, present, 100+i)
		}
	}
}

// TestReplicaLagClampWhenMirrorAheadOfPrimary is the underflow regression in
// its purest form: a mirror whose durable history is AHEAD of the primary it
// is attached to (the post-promotion shape — a surviving mirror re-pointed at
// a new primary that has not caught up to the old timeline). The applied
// watermark resumes above the primary's durable LSN, so the unguarded
// subtraction at the old internal/engine/replica.go:938 would report a Lag of
// ~2^64; the clamp must report zero.
func TestReplicaLagClampWhenMirrorAheadOfPrimary(t *testing.T) {
	mirror := wal.NewMemStorage()
	{
		storage := wal.NewMemStorage()
		db := MustOpen(kvDef("kv0"), walCfg(storage))
		rep, err := OpenReplica(db, ReplicaOptions{Storage: mirror})
		if err != nil {
			t.Fatalf("OpenReplica: %v", err)
		}
		for i := 0; i < 40; i++ {
			if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		if err := rep.WaitCaughtUp(replicaWait); err != nil {
			t.Fatal(err)
		}
		rep.Close()
		db.Close()
	}

	// A new primary on the same definition with a much shorter history: its
	// durable LSN is far below the mirror's resume point.
	db2 := MustOpen(kvDef("kv0"), walCfg(wal.NewMemStorage()))
	t.Cleanup(db2.Close)
	for i := 0; i < 3; i++ {
		if _, err := db2.Execute("kv0", "put", int64(i), int64(i)); err != nil {
			t.Fatalf("new-primary put %d: %v", i, err)
		}
	}
	rep2, err := OpenReplica(db2, ReplicaOptions{Storage: mirror})
	if err != nil {
		t.Fatalf("reattach replica: %v", err)
	}
	t.Cleanup(rep2.Close)
	st := rep2.Stats()
	for _, sh := range st.Shards {
		if sh.Applied <= sh.PrimaryDurable {
			t.Fatalf("scenario failed to put the applied watermark ahead of the primary: %+v", sh)
		}
		if sh.Lag != 0 {
			t.Fatalf("shard %d Lag = %d with applied %d ahead of durable %d, want 0",
				sh.Container, sh.Lag, sh.Applied, sh.PrimaryDurable)
		}
	}
}

// TestDegradedReplicaSurfacesMirrorFailureCause: when the mirror device dies,
// Stats().Err must explain WHY the replica degraded — before the fix the
// degrade path recorded only the append/sync error and dropped the close
// error, and Replica.Close discarded mirror close failures entirely. The
// replica must also keep applying for read availability after degrading.
func TestDegradedReplicaSurfacesMirrorFailureCause(t *testing.T) {
	storage := wal.NewMemStorage()
	db := MustOpen(kvDef("kv0"), walCfg(storage))
	t.Cleanup(db.Close)

	mirror := wal.NewMemStorage()
	rep, err := OpenReplica(db, ReplicaOptions{Ack: AckSemiSync, Storage: mirror})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	t.Cleanup(rep.Close)
	for i := 0; i < 10; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}

	cause := errors.New("injected mirror device failure")
	mirror.FailSyncs(cause)
	for i := 10; i < 20; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put after mirror failure %d: %v", i, err)
		}
	}
	waitFor(t, replicaWait, func() bool { return rep.Stats().Degraded })
	if st := rep.Stats(); st.Err == "" ||
		!strings.Contains(st.Err, "degraded to async") ||
		!strings.Contains(st.Err, cause.Error()) {
		t.Fatalf("degraded replica Err = %q, want the mirror failure cause", st.Err)
	}
	// Degraded means no durability promise, not no reads: the apply loop keeps
	// tailing, so the writes made after the failure become visible.
	waitFor(t, replicaWait, func() bool {
		row, err := rep.ReadRow("kv0", "store", int64(19))
		return err == nil && row != nil && row.Int64(1) == 119
	})
	statsSane(t, rep.Stats())
}

// TestRebootstrapAdvancesAppliedWatermark pins the fast-forward half of the
// Lag fix at the unit level: rebootstrapShard installs a checkpoint whose
// floor is beyond everything the shard has applied, and must move the applied
// watermark up with the floor. Before the fix the watermark stayed stale until
// the next apply round with pending work, so Stats overstated Lag by the
// width of the truncation hole the checkpoint covered.
func TestRebootstrapAdvancesAppliedWatermark(t *testing.T) {
	storage := wal.NewMemStorage()
	db := MustOpen(kvDef("kv0"), walCfg(storage))
	t.Cleanup(db.Close)

	// A replica that never polls: its cursor and applied watermark stay at
	// zero while the primary's history grows.
	rep, err := OpenReplica(db, ReplicaOptions{PollInterval: time.Hour})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	t.Cleanup(rep.Close)
	for i := 0; i < 40; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	rep.mu.Lock()
	s := rep.shards[0]
	if s.appliedTo != 0 {
		rep.mu.Unlock()
		t.Fatalf("shard applied %d before any poll, want 0", s.appliedTo)
	}
	if err := rep.rebootstrapShard(s); err != nil {
		rep.mu.Unlock()
		t.Fatalf("rebootstrapShard: %v", err)
	}
	floor, applied := s.floor, s.appliedTo
	rep.mu.Unlock()
	if floor == 0 {
		t.Fatal("checkpoint installed a zero floor; the scenario proves nothing")
	}
	if applied != floor {
		t.Fatalf("applied watermark %d after rebootstrap, want the new floor %d", applied, floor)
	}
	statsSane(t, rep.Stats())
}

// --- Satellite: differential primary-vs-replica query workload -------------

// TestReplicaDifferentialQueryWorkload runs an identical declarative query
// workload against the primary and a caught-up replica: every result must be
// identical — rows, aggregates, and the access paths the planner chose
// (including secondary-index paths, proving replicated index maintenance).
func TestReplicaDifferentialQueryWorkload(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := Config{
		Containers:            1,
		ExecutorsPerContainer: 2,
		GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 4, Window: 200 * time.Microsecond},
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: storage},
	}
	db := openShop(t, cfg, "shop-0")
	newShopSeed().load(t, db, "shop-0")
	// Loader rows are not logged; the checkpoint blob carries them, and the
	// replica's bootstrap installs it — the checkpoint-transfer path.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	rep, err := OpenReplica(db, ReplicaOptions{})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	t.Cleanup(rep.Close)
	// An index-moving, index-inserting, index-deleting mutation mix: the
	// replica must track every entry migration.
	for i := 0; i < 8; i++ {
		if _, err := db.Execute("shop-0", "add_order", int64(100+i), int64(i%4+1), fmt.Sprintf("b%d", i%3), float64(i)); err != nil {
			t.Fatalf("add_order: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := db.Execute("shop-0", "move_branch", int64(100+i), "moved"); err != nil {
			t.Fatalf("move_branch: %v", err)
		}
	}
	if _, err := db.Execute("shop-0", "del_order", int64(104)); err != nil {
		t.Fatalf("del_order: %v", err)
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}

	queries := map[string]func() *rel.Query{
		"pk-point": func() *rel.Query {
			return rel.NewQuery().From("o", "orders", "shop-0").
				Where("o", "order_id", rel.Eq, int64(101)).
				Select("o.order_id", "o.branch", "o.total")
		},
		"index-by-cust": func() *rel.Query {
			return rel.NewQuery().From("o", "orders", "shop-0").
				Where("o", "cust", rel.Eq, int64(2)).
				OrderBy("o.order_id", false).
				Select("o.order_id", "o.total")
		},
		"index-by-branch-moved": func() *rel.Query {
			return rel.NewQuery().From("o", "orders", "shop-0").
				Where("o", "branch", rel.Eq, "moved").
				OrderBy("o.order_id", false).
				Select("o.order_id")
		},
		"join-groupby": func() *rel.Query {
			return rel.NewQuery().From("c", "custs", "shop-0").From("o", "orders", "shop-0").
				Join("c", "cust_id", "o", "cust").
				GroupBy("c.region").
				Sum("o.total", "total").Count("n").
				OrderBy("c.region", false)
		},
		"full-scan": func() *rel.Query {
			return rel.NewQuery().From("o", "orders", "shop-0").
				OrderBy("o.total", true).Limit(5).
				Select("o.order_id", "o.total")
		},
	}
	for name, mk := range queries {
		pres, err := db.Query(mk())
		if err != nil {
			t.Fatalf("%s on primary: %v", name, err)
		}
		rres, err := rep.Query(mk())
		if err != nil {
			t.Fatalf("%s on replica: %v", name, err)
		}
		if !reflect.DeepEqual(pres.Rows, rres.Rows) {
			t.Fatalf("%s diverged:\nprimary %v\nreplica %v", name, pres.Rows, rres.Rows)
		}
		if !reflect.DeepEqual(pres.AccessPaths, rres.AccessPaths) {
			t.Fatalf("%s access paths diverged:\nprimary %v\nreplica %v", name, pres.AccessPaths, rres.AccessPaths)
		}
	}
	// Pin that the interesting paths really were index paths on BOTH sides —
	// a silent fallback to full scans would hollow the test out.
	res, err := rep.Query(queries["index-by-cust"]())
	if err != nil {
		t.Fatal(err)
	}
	if res.AccessPaths["o"] != "index:by_cust" {
		t.Fatalf("replica chose %q for cust equality, want index:by_cust", res.AccessPaths["o"])
	}
	res, err = rep.Query(queries["index-by-branch-moved"]())
	if err != nil {
		t.Fatal(err)
	}
	if res.AccessPaths["o"] != "index:by_branch" {
		t.Fatalf("replica chose %q for branch equality, want index:by_branch", res.AccessPaths["o"])
	}
}

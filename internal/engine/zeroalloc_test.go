package engine

import (
	"testing"

	"reactdb/internal/occ"
	"reactdb/internal/rel"
)

// TestHotReadZeroAlloc pins the storage-level hot read path — key encoding
// into pooled scratch, B+tree lookup, OCC stable read with read-set
// bookkeeping — at 0 allocs/op. Row decoding is deliberately outside the
// pinned path (materializing a Row inherently allocates); getRaw is the
// boundary the zero-allocation refactor defends.
func TestHotReadZeroAlloc(t *testing.T) {
	schema := rel.MustSchema("accounts",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "val", Type: rel.Int64}}, "id")
	tbl := rel.NewTable(schema)
	const rows = 1024
	for i := 0; i < rows; i++ {
		tbl.MustLoadRow(rel.Row{int64(i), int64(i) * 3})
	}
	d := occ.NewDomain("zero-alloc")
	c := &execContext{txn: d.Begin()}

	// Key values are pre-boxed: boxing the caller's int64 argument is the
	// caller's cost, identical before and after the refactor.
	boxed := make([]any, rows)
	for i := range boxed {
		boxed[i] = int64(i)
	}
	vals := make([]any, 1)

	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		vals[0] = boxed[i%rows]
		i++
		data, present, err := c.getRaw(tbl, vals)
		if err != nil || !present || len(data) == 0 {
			t.Fatalf("getRaw: data=%v present=%v err=%v", data, present, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hot read allocated %.1f allocs/op, want 0", allocs)
	}

	// Repeat reads of the same key stay allocation-free too (read-set dedup
	// must not rebuild map keys or grow the set).
	vals[0] = boxed[7]
	allocs = testing.AllocsPerRun(2000, func() {
		if _, present, err := c.getRaw(tbl, vals); err != nil || !present {
			t.Fatalf("repeat getRaw failed: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("repeat hot read allocated %.1f allocs/op, want 0", allocs)
	}
	c.txn.Release()
}

package engine

import (
	"testing"

	"reactdb/internal/occ"
	"reactdb/internal/rel"
)

// TestHotReadZeroAlloc pins the storage-level hot read path — key encoding
// into pooled scratch, B+tree lookup, OCC stable read with read-set
// bookkeeping — at 0 allocs/op. Row decoding is deliberately outside the
// pinned path (materializing a Row inherently allocates); getRaw is the
// boundary the zero-allocation refactor defends.
func TestHotReadZeroAlloc(t *testing.T) {
	schema := rel.MustSchema("accounts",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "val", Type: rel.Int64}}, "id")
	tbl := rel.NewTable(schema)
	const rows = 1024
	for i := 0; i < rows; i++ {
		tbl.MustLoadRow(rel.Row{int64(i), int64(i) * 3})
	}
	d := occ.NewDomain("zero-alloc")
	c := &execContext{txn: d.Begin()}

	// Key values are pre-boxed: boxing the caller's int64 argument is the
	// caller's cost, identical before and after the refactor.
	boxed := make([]any, rows)
	for i := range boxed {
		boxed[i] = int64(i)
	}
	vals := make([]any, 1)

	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		vals[0] = boxed[i%rows]
		i++
		data, present, err := c.getRaw(tbl, vals)
		if err != nil || !present || len(data) == 0 {
			t.Fatalf("getRaw: data=%v present=%v err=%v", data, present, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hot read allocated %.1f allocs/op, want 0", allocs)
	}

	// Repeat reads of the same key stay allocation-free too (read-set dedup
	// must not rebuild map keys or grow the set).
	vals[0] = boxed[7]
	allocs = testing.AllocsPerRun(2000, func() {
		if _, present, err := c.getRaw(tbl, vals); err != nil || !present {
			t.Fatalf("repeat getRaw failed: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("repeat hot read allocated %.1f allocs/op, want 0", allocs)
	}
	c.txn.Release()
}

// TestHotReadViewZeroAlloc pins the full read — key encoding, lookup, OCC
// read AND column access — at 0 allocs/op through the lazy RowView, and pins
// DecodeRowInto at boxing-only cost (one alloc per variable-width column, no
// Row header). Together they hold the line the view refactor moved: before
// it, every read paid the Row materialization on top of getRaw.
func TestHotReadViewZeroAlloc(t *testing.T) {
	schema := rel.MustSchema("accounts",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "val", Type: rel.Int64}}, "id")
	tbl := rel.NewTable(schema)
	const rows = 1024
	for i := 0; i < rows; i++ {
		tbl.MustLoadRow(rel.Row{int64(i), int64(i) * 3})
	}
	d := occ.NewDomain("zero-alloc-view")
	c := &execContext{txn: d.Begin()}
	defer c.txn.Release()

	boxed := make([]any, rows)
	for i := range boxed {
		boxed[i] = int64(i)
	}
	vals := make([]any, 1)

	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		k := i % rows
		vals[0] = boxed[k]
		i++
		data, present, err := c.getRaw(tbl, vals)
		if err != nil || !present {
			t.Fatalf("getRaw: present=%v err=%v", present, err)
		}
		view := schema.ViewRow(data)
		if got := view.Int64(1); got != int64(k)*3 {
			t.Fatalf("view read %d, want %d", got, k*3)
		}
	})
	if allocs != 0 {
		t.Fatalf("view read allocated %.1f allocs/op, want 0", allocs)
	}

	// DecodeRowInto reuses the Row's backing array: only the two int64
	// boxings remain (values above the runtime's small-int cache).
	scratch := make(rel.Row, 0, len(schema.Columns()))
	i = 1000 // stay above the boxing fast path for small ints
	allocs = testing.AllocsPerRun(2000, func() {
		k := 1000 + i%24
		vals[0] = boxed[k]
		i++
		data, _, err := c.getRaw(tbl, vals)
		if err != nil {
			t.Fatal(err)
		}
		row, err := schema.DecodeRowInto(scratch, data)
		if err != nil || row.Int64(1) != int64(k)*3 {
			t.Fatalf("DecodeRowInto: row=%v err=%v", row, err)
		}
		scratch = row
	})
	if allocs > 2 {
		t.Fatalf("DecodeRowInto allocated %.1f allocs/op, want <= 2 (boxing only)", allocs)
	}
}

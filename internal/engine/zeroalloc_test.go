package engine

import (
	"testing"

	"reactdb/internal/occ"
	"reactdb/internal/rel"
)

// TestHotReadZeroAlloc pins the storage-level hot read path — key encoding
// into pooled scratch, B+tree lookup, OCC stable read with read-set
// bookkeeping — at 0 allocs/op. Row decoding is deliberately outside the
// pinned path (materializing a Row inherently allocates); getRaw is the
// boundary the zero-allocation refactor defends.
func TestHotReadZeroAlloc(t *testing.T) {
	schema := rel.MustSchema("accounts",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "val", Type: rel.Int64}}, "id")
	tbl := rel.NewTable(schema)
	const rows = 1024
	for i := 0; i < rows; i++ {
		tbl.MustLoadRow(rel.Row{int64(i), int64(i) * 3})
	}
	d := occ.NewDomain("zero-alloc")
	c := &execContext{txn: d.Begin()}

	// Key values are pre-boxed: boxing the caller's int64 argument is the
	// caller's cost, identical before and after the refactor.
	boxed := make([]any, rows)
	for i := range boxed {
		boxed[i] = int64(i)
	}
	vals := make([]any, 1)

	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		vals[0] = boxed[i%rows]
		i++
		data, present, err := c.getRaw(tbl, vals)
		if err != nil || !present || len(data) == 0 {
			t.Fatalf("getRaw: data=%v present=%v err=%v", data, present, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hot read allocated %.1f allocs/op, want 0", allocs)
	}

	// Repeat reads of the same key stay allocation-free too (read-set dedup
	// must not rebuild map keys or grow the set).
	vals[0] = boxed[7]
	allocs = testing.AllocsPerRun(2000, func() {
		if _, present, err := c.getRaw(tbl, vals); err != nil || !present {
			t.Fatalf("repeat getRaw failed: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("repeat hot read allocated %.1f allocs/op, want 0", allocs)
	}
	c.txn.Release()
}

// TestHotReadViewZeroAlloc pins the full read — key encoding, lookup, OCC
// read AND column access — at 0 allocs/op through the lazy RowView, and pins
// DecodeRowInto at boxing-only cost (one alloc per variable-width column, no
// Row header). Together they hold the line the view refactor moved: before
// it, every read paid the Row materialization on top of getRaw.
func TestHotReadViewZeroAlloc(t *testing.T) {
	schema := rel.MustSchema("accounts",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "val", Type: rel.Int64}}, "id")
	tbl := rel.NewTable(schema)
	const rows = 1024
	for i := 0; i < rows; i++ {
		tbl.MustLoadRow(rel.Row{int64(i), int64(i) * 3})
	}
	d := occ.NewDomain("zero-alloc-view")
	c := &execContext{txn: d.Begin()}
	defer c.txn.Release()

	boxed := make([]any, rows)
	for i := range boxed {
		boxed[i] = int64(i)
	}
	vals := make([]any, 1)

	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		k := i % rows
		vals[0] = boxed[k]
		i++
		data, present, err := c.getRaw(tbl, vals)
		if err != nil || !present {
			t.Fatalf("getRaw: present=%v err=%v", present, err)
		}
		view := schema.ViewRow(data)
		if got := view.Int64(1); got != int64(k)*3 {
			t.Fatalf("view read %d, want %d", got, k*3)
		}
	})
	if allocs != 0 {
		t.Fatalf("view read allocated %.1f allocs/op, want 0", allocs)
	}

	// DecodeRowInto reuses the Row's backing array: only the two int64
	// boxings remain (values above the runtime's small-int cache).
	scratch := make(rel.Row, 0, len(schema.Columns()))
	i = 1000 // stay above the boxing fast path for small ints
	allocs = testing.AllocsPerRun(2000, func() {
		k := 1000 + i%24
		vals[0] = boxed[k]
		i++
		data, _, err := c.getRaw(tbl, vals)
		if err != nil {
			t.Fatal(err)
		}
		row, err := schema.DecodeRowInto(scratch, data)
		if err != nil || row.Int64(1) != int64(k)*3 {
			t.Fatalf("DecodeRowInto: row=%v err=%v", row, err)
		}
		scratch = row
	})
	if allocs > 2 {
		t.Fatalf("DecodeRowInto allocated %.1f allocs/op, want <= 2 (boxing only)", allocs)
	}
}

// TestProcedureReadPatternZeroAlloc pins the exact read sequence the
// converted read-only workload procedures execute — smallbank balance's
// string-keyed account lookup followed by two numeric-keyed balance reads,
// all through Context.GetView — at 0 allocs/op against a real execContext.
// The workload packages cannot be imported here (they depend on engine), so
// the pattern is replicated structurally: same schemas, same access shape,
// same view accessors. If GetView or the key-scratch path regresses into
// materializing rows, this fails.
func TestProcedureReadPatternZeroAlloc(t *testing.T) {
	account := rel.MustSchema("account",
		[]rel.Column{{Name: "name", Type: rel.String}, {Name: "custid", Type: rel.Int64}}, "name")
	savings := rel.MustSchema("savings",
		[]rel.Column{{Name: "custid", Type: rel.Int64}, {Name: "bal", Type: rel.Float64}}, "custid")
	checking := rel.MustSchema("checking",
		[]rel.Column{{Name: "custid", Type: rel.Int64}, {Name: "bal", Type: rel.Float64}}, "custid")

	catalog := rel.NewCatalog()
	accTbl := catalog.MustCreateTable(account)
	savTbl := catalog.MustCreateTable(savings)
	chkTbl := catalog.MustCreateTable(checking)
	const custs = 64
	names := make([]any, custs)
	ids := make([]any, custs)
	for i := 0; i < custs; i++ {
		name := "cust-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		names[i] = name
		ids[i] = int64(i)
		accTbl.MustLoadRow(rel.Row{name, int64(i)})
		savTbl.MustLoadRow(rel.Row{int64(i), float64(i) * 2})
		chkTbl.MustLoadRow(rel.Row{int64(i), float64(i) * 3})
	}

	d := occ.NewDomain("zero-alloc-proc")
	c := &execContext{txn: d.Begin(), catalog: catalog}
	defer c.txn.Release()

	// Key arguments are pre-boxed and passed through a reused slice: the
	// variadic expansion of an existing []any does not allocate.
	nameArg := make([]any, 1)
	idArg := make([]any, 1)
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		k := i % custs
		i++
		// The balance procedure's body: resolve the account row, then read
		// both balances, summing through the views.
		nameArg[0] = names[k]
		acc, ok, err := c.GetView("account", nameArg...)
		if err != nil || !ok {
			t.Fatalf("account view: ok=%v err=%v", ok, err)
		}
		idArg[0] = ids[acc.Int64(1)]
		sav, savOK, err := c.GetView("savings", idArg...)
		if err != nil {
			t.Fatal(err)
		}
		chk, chkOK, err := c.GetView("checking", idArg...)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		if savOK {
			total += sav.Float64(1)
		}
		if chkOK {
			total += chk.Float64(1)
		}
		if total != float64(k)*5 {
			t.Fatalf("balance(%d) = %v, want %v", k, total, float64(k)*5)
		}
	})
	if allocs != 0 {
		t.Fatalf("procedure read pattern allocated %.1f allocs/op, want 0", allocs)
	}
}

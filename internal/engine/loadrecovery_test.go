package engine

import (
	"testing"

	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// TestFinishLoadRecoversWithoutLoaders closes the loader-recovery gap left by
// fuzzy checkpointing: loader writes bypass the WAL (TID 0), so without a
// checkpoint a restart had to re-run the loader before Recover (see
// TestRecoverAfterLoaderBootstrap). FinishLoad forces an initial checkpoint
// after the bulk load; a later incarnation must then recover every loaded
// row — including rows never touched by a transaction — plus the logged
// suffix, with no loader involved.
func TestFinishLoadRecoversWithoutLoaders(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := walCfg(storage)
	def := kvDef("kv0")

	db := MustOpen(def, cfg)
	db.MustLoad("kv0", "store", rel.Row{int64(1), int64(11)})
	db.MustLoad("kv0", "store", rel.Row{int64(2), int64(22)})
	if err := db.FinishLoad(); err != nil {
		t.Fatalf("FinishLoad: %v", err)
	}
	// Post-load transactions land in the log above the checkpoint and must
	// replay on top of the restored base rows.
	if _, err := db.Execute("kv0", "put", int64(2), int64(222)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := db.Execute("kv0", "put", int64(3), int64(33)); err != nil {
		t.Fatalf("put: %v", err)
	}
	db.Close()

	db2 := MustOpen(def, cfg)
	t.Cleanup(db2.Close)
	// Deliberately NO loader re-run before Recover.
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if v, present := readV(t, db2, "kv0", 1); !present || v != 11 {
		t.Fatalf("loaded-never-written key 1 = (%d, %v), want 11 without re-running loaders", v, present)
	}
	if v, present := readV(t, db2, "kv0", 2); !present || v != 222 {
		t.Fatalf("key 2 = (%d, %v), want logged version 222 over loaded 22", v, present)
	}
	if v, present := readV(t, db2, "kv0", 3); !present || v != 33 {
		t.Fatalf("key 3 = (%d, %v), want 33", v, present)
	}
	cs := db2.CheckpointStats()[0]
	if cs.RestoredRows == 0 {
		t.Fatalf("recovery did not restore from the load checkpoint: %+v", cs)
	}
}

// TestFinishLoadIsNoOpWithoutWAL keeps the call safe in modeled-durability
// deployments.
func TestFinishLoadIsNoOpWithoutWAL(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(1)
	db := openAccounts(t, 2, 100, cfg)
	if err := db.FinishLoad(); err != nil {
		t.Fatalf("FinishLoad without WAL: %v", err)
	}
}

package engine

import (
	"sync"

	"reactdb/internal/kv"
)

// This file owns the engine's key-buffer plumbing: every composite key the hot
// path builds — encoded primary keys, prefix bounds, and the fully-qualified
// reactor\x00relation\x00pk lock keys — is appended into a pooled scratch
// buffer instead of concatenated through strings. Buffers are pooled (not
// stored per executor) because cooperative multitasking lets a second task run
// on the same executor whenever the first one blocks on a future: per-slot
// executor scratch would be clobbered mid-scan, whereas a pool hands every
// in-flight operation its own buffer and recycles it when the operation ends.

// keyScratch is one reusable key buffer. Operations take one from the pool,
// build every key they need in it (the OCC layer interns keys it retains, and
// the B+tree copies keys on insert, so reuse is safe), and put it back.
type keyScratch struct {
	buf []byte
}

var keyScratchPool = sync.Pool{
	New: func() any { return &keyScratch{buf: make([]byte, 0, 128)} },
}

func getKeyScratch() *keyScratch { return keyScratchPool.Get().(*keyScratch) }

// keyScratch returns the context's cached scratch, drawing one from the pool
// on first use. Point operations (get/insert/update/delete) run start to
// finish without yielding or re-entering the context, so they can share one
// buffer per context instead of paying a pool round-trip per operation. Scans
// must NOT use it: they hold their bounds across row callbacks that may
// re-enter the same context's point operations.
func (c *execContext) keyScratch() *keyScratch {
	if c.scratch == nil {
		c.scratch = getKeyScratch()
	}
	return c.scratch
}

// releaseScratch recycles the context's cached scratch, if any, when the
// (sub-)transaction invocation completes. Contexts that are never released
// (abandoned on error paths) just let the GC take the buffer.
func (c *execContext) releaseScratch() {
	if c.scratch != nil {
		putKeyScratch(c.scratch, c.scratch.buf)
		c.scratch = nil
	}
}

// putKeyScratch returns s to the pool, remembering the (possibly grown)
// backing array under buf so the capacity is kept.
func putKeyScratch(s *keyScratch, buf []byte) {
	s.buf = buf[:0]
	keyScratchPool.Put(s)
}

// scanSlab is a reusable batch buffer for cursor scans (kv.Cursor.ScanBatch).
type scanSlab struct {
	entries []kv.ScanEntry
}

// scanBatchSize balances latch hold time against per-batch overhead: one
// RLock/RUnlock of the tree per scanBatchSize rows.
const scanBatchSize = 128

var scanSlabPool = sync.Pool{
	New: func() any { return &scanSlab{entries: make([]kv.ScanEntry, scanBatchSize)} },
}

func getScanSlab() *scanSlab  { return scanSlabPool.Get().(*scanSlab) }
func putScanSlab(s *scanSlab) { scanSlabPool.Put(s) }

// appendLockKey appends the engine's fully-qualified write key — reactor
// \x00 relation \x00 encoded-primary-key, the format splitWALKey decomposes —
// to dst. pk may alias dst's backing array (the usual case: the caller encodes
// the primary key first and appends the lock key after it in the same scratch
// buffer); append copies forward from a lower offset, which is safe.
func appendLockKey(dst []byte, reactor, relation string, pk []byte) []byte {
	dst = append(dst, reactor...)
	dst = append(dst, 0)
	dst = append(dst, relation...)
	dst = append(dst, 0)
	return append(dst, pk...)
}

package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// execWithWatchdog runs one Execute and fails the test if it does not
// complete within the deadline — the symptom of a 2PC abort path that leaked
// a prepared participant's OCC locks (Record.Lock spins forever on a leaked
// latch). The returned error is the Execute outcome.
func execWithWatchdog(t *testing.T, db *Database, reactor, proc string, args ...any) error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := db.Execute(reactor, proc, args...)
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatalf("%s.%s hung: a failed 2PC left OCC locks held", reactor, proc)
		return nil
	}
}

// twoContainerCfg places kv0 on container 0 and kv1 on container 1 over the
// given storage, with group commit off so the 2PC record forcing uses the
// eager append+fsync path (deterministic write counts for fault injection).
func twoContainerCfg(storage wal.Storage) Config {
	return Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: storage},
		Placement: func(reactor string) int {
			if reactor == "kv0" {
				return 0
			}
			return 1
		},
	}
}

// TestTwoPCPrepareAppendFailureReleasesLocks is the abort-path regression
// test: participant 1's prepare-record append fails mid-protocol, after
// participant 0 already holds its OCC locks and its prepare record is in its
// log. Every participant must be released — a follow-up transaction on the
// very keys the failed 2PC locked must complete — and the failed transaction
// must be absent everywhere, both live and after recovery.
func TestTwoPCPrepareAppendFailureReleasesLocks(t *testing.T) {
	mem := wal.NewMemStorage()
	var armed atomic.Bool
	storage := &failingSubStorage{
		Storage:  wal.Storage(mem),
		failName: "container-1",
		armed:    &armed,
		errVal:   errors.New("injected log device failure"),
	}
	def := kvDef("kv0", "kv1")
	db := MustOpen(def, twoContainerCfg(storage))

	armed.Store(true)
	if err := execWithWatchdog(t, db, "kv0", "copyTo", "kv1", int64(2), int64(20)); err == nil {
		t.Fatal("copyTo succeeded despite the injected prepare append failure")
	}
	armed.Store(false)

	// The same keys must be writable immediately: leaked prepare locks would
	// hang these forever. Container 1's log wedged on the failed append
	// (fail-stop), so its write completes with an error; container 0's
	// succeeds outright.
	if err := execWithWatchdog(t, db, "kv0", "put", int64(2), int64(200)); err != nil {
		t.Fatalf("put on kv0 after failed 2PC: %v", err)
	}
	if err := execWithWatchdog(t, db, "kv1", "put", int64(2), int64(201)); err == nil {
		t.Fatal("put on kv1 succeeded although its log wedged fail-stop")
	}
	db.Close()

	// Recovery sees container 0's durable (retracted, undecided) prepare
	// record and no decision: presumed abort, nothing resurrected.
	db2 := MustOpen(def, twoContainerCfg(mem))
	t.Cleanup(db2.Close)
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if v, present := readV(t, db2, "kv0", 2); !present || v != 200 {
		t.Fatalf("kv0[2] = (%d, %v), want the follow-up put's 200", v, present)
	}
	if v, present := readV(t, db2, "kv1", 2); present {
		t.Fatalf("aborted 2PC write resurrected on kv1 with %d", v)
	}
}

// failNthWriteStorage fails exactly the Nth segment write issued within one
// named sub-storage, counting across segments — the shape of a log device
// failing at a chosen protocol step while every other container stays
// healthy.
type failNthWriteStorage struct {
	wal.Storage
	name     string
	failName string
	writes   *atomic.Int64
	failOn   int64
	errVal   error
}

func (s *failNthWriteStorage) Sub(name string) wal.Storage {
	return &failNthWriteStorage{
		Storage:  s.Storage.Sub(name),
		name:     name,
		failName: s.failName,
		writes:   s.writes,
		failOn:   s.failOn,
		errVal:   s.errVal,
	}
}

func (s *failNthWriteStorage) Create(index uint64) (wal.SegmentFile, error) {
	f, err := s.Storage.Create(index)
	if err != nil {
		return nil, err
	}
	return &failNthSegmentFile{SegmentFile: f, owner: s}, nil
}

type failNthSegmentFile struct {
	wal.SegmentFile
	owner *failNthWriteStorage
}

func (f *failNthSegmentFile) Write(p []byte) (int, error) {
	if f.owner.name == f.owner.failName && f.owner.writes.Add(1) == f.owner.failOn {
		return 0, f.owner.errVal
	}
	return f.SegmentFile.Write(p)
}

// TestTwoPCDecisionFailurePresumedAbort fails the coordinator's decision
// append after every participant's prepare record is already durable: the
// hardest abort case. The client gets an error, every lock is released, and
// recovery — finding durable prepares on both participants but no decision —
// presumes abort on both, never a subset.
func TestTwoPCDecisionFailurePresumedAbort(t *testing.T) {
	mem := wal.NewMemStorage()
	var writes atomic.Int64
	// On container 0 (the coordinator: kv0 is the root), write 1 is the
	// prepare record and write 2 the decision record.
	storage := &failNthWriteStorage{
		Storage:  wal.Storage(mem),
		failName: "container-0",
		writes:   &writes,
		failOn:   2,
		errVal:   errors.New("injected decision append failure"),
	}
	def := kvDef("kv0", "kv1")
	db := MustOpen(def, twoContainerCfg(storage))

	if err := execWithWatchdog(t, db, "kv0", "copyTo", "kv1", int64(2), int64(20)); err == nil {
		t.Fatal("copyTo succeeded despite the injected decision append failure")
	}
	// No participant may stay locked; kv1's log is healthy and must accept
	// the same key immediately, and the coordinator's log — which salvaged
	// the failed batch by retracting it on a fresh segment — keeps serving.
	if err := execWithWatchdog(t, db, "kv1", "put", int64(2), int64(201)); err != nil {
		t.Fatalf("put on kv1 after failed decision: %v", err)
	}
	if err := execWithWatchdog(t, db, "kv0", "put", int64(9), int64(90)); err != nil {
		t.Fatalf("put on kv0 after salvaged decision failure: %v", err)
	}
	db.Close()

	db2 := MustOpen(def, twoContainerCfg(mem))
	t.Cleanup(db2.Close)
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if v, present := readV(t, db2, "kv0", 2); present {
		t.Fatalf("undecided 2PC write resurrected on kv0 with %d", v)
	}
	if v, present := readV(t, db2, "kv1", 2); !present || v != 201 {
		t.Fatalf("kv1[2] = (%d, %v), want the follow-up put's 201", v, present)
	}
	// The recovered database must run fresh multi-container commits over the
	// same keys (global ids reseeded, tombstones in place).
	if err := execWithWatchdog(t, db2, "kv0", "copyTo", "kv1", int64(2), int64(22)); err != nil {
		t.Fatalf("post-recovery copyTo: %v", err)
	}
	if v, present := readV(t, db2, "kv1", 2); !present || v != 22 {
		t.Fatalf("post-recovery copyTo invisible on kv1: (%d, %v)", v, present)
	}
}

// TestTwoPCRecoveryCommitsDecidedTransaction checks the commit side of
// presumed abort end to end: an acknowledged multi-container transaction
// leaves durable prepare records on both participants and a decision record
// carrying the full participant set on the coordinator's log, and a machine
// crash immediately after the ack recovers it on every participant.
func TestTwoPCRecoveryCommitsDecidedTransaction(t *testing.T) {
	mem := wal.NewMemStorage()
	cfg := twoContainerCfg(mem)
	cfg.GroupCommit = GroupCommitConfig{Enabled: true, MaxBatch: 4, Window: 200 * time.Microsecond}
	def := kvDef("kv0", "kv1")
	db := MustOpen(def, cfg)
	if _, err := db.Execute("kv0", "copyTo", "kv1", int64(2), int64(20)); err != nil {
		t.Fatalf("copyTo: %v", err)
	}
	// Machine crash right after the ack: only fsynced bytes survive; the
	// wedged instance is abandoned without Close.
	crashed := mem.CrashCopy()
	defer db.Close()

	// The surviving coordinator log must hold the protocol's records.
	log, err := wal.Open(crashed.Sub("container-0"), wal.Options{})
	if err != nil {
		t.Fatalf("open coordinator log: %v", err)
	}
	var prepares, decisions int
	var participants []uint64
	if err := log.Replay(func(rec wal.Record) error {
		switch rec.Kind {
		case wal.KindPrepare:
			prepares++
		case wal.KindDecision:
			decisions++
			participants = rec.Participants
		}
		return nil
	}); err != nil {
		t.Fatalf("replay coordinator log: %v", err)
	}
	if prepares != 1 || decisions != 1 {
		t.Fatalf("coordinator log holds %d prepare and %d decision records, want 1 and 1", prepares, decisions)
	}
	if len(participants) != 2 || participants[0] != 0 || participants[1] != 1 {
		t.Fatalf("decision participants = %v, want [0 1]", participants)
	}

	cfg2 := twoContainerCfg(crashed)
	cfg2.GroupCommit = cfg.GroupCommit
	db2 := MustOpen(def, cfg2)
	t.Cleanup(db2.Close)
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if v, present := readV(t, db2, "kv0", 2); !present || v != 20 {
		t.Fatalf("acknowledged 2PC write lost on kv0: (%d, %v)", v, present)
	}
	if v, present := readV(t, db2, "kv1", 2); !present || v != 20 {
		t.Fatalf("acknowledged 2PC write lost on kv1: (%d, %v)", v, present)
	}
}

// failNthSyncStorage fails chosen fsync ordinals per named sub-storage
// (counting only syncs that reach the storage — absorbed Sync calls issue no
// IO). It models a log device whose fsync fails transiently at a chosen
// protocol step.
type failNthSyncStorage struct {
	wal.Storage
	name   string
	spec   map[string]map[int64]bool // sub name -> failing sync ordinals
	counts *sync.Map                 // sub name -> *atomic.Int64
	errVal error
}

func (s *failNthSyncStorage) Sub(name string) wal.Storage {
	return &failNthSyncStorage{
		Storage: s.Storage.Sub(name),
		name:    name,
		spec:    s.spec,
		counts:  s.counts,
		errVal:  s.errVal,
	}
}

func (s *failNthSyncStorage) Create(index uint64) (wal.SegmentFile, error) {
	f, err := s.Storage.Create(index)
	if err != nil {
		return nil, err
	}
	return &failNthSyncFile{SegmentFile: f, owner: s}, nil
}

type failNthSyncFile struct {
	wal.SegmentFile
	owner *failNthSyncStorage
}

func (f *failNthSyncFile) Sync() error {
	o := f.owner
	if fails := o.spec[o.name]; fails != nil {
		c, _ := o.counts.LoadOrStore(o.name, &atomic.Int64{})
		if fails[c.(*atomic.Int64).Add(1)] {
			return o.errVal
		}
	}
	return f.SegmentFile.Sync()
}

// TestTwoPCReadOnlyCoordinatorDecisionFsyncFailure covers the nastiest abort
// corner: the coordinator participant is read-only (no prepare record of its
// own), the decision record's fsync fails, and the remote participant's
// retraction fsync fails too. The orphan decision must still be tombstoned
// on the coordinator's log — otherwise a later commit's fsync makes it
// durable, and recovery (finding the remote prepare durable and its
// tombstone lost) would resurrect the failed transaction's remote write.
func TestTwoPCReadOnlyCoordinatorDecisionFsyncFailure(t *testing.T) {
	mem := wal.NewMemStorage()
	storage := &failNthSyncStorage{
		Storage: wal.Storage(mem),
		spec: map[string]map[int64]bool{
			// container-0 (coordinator): sync 1 is the decision force (the
			// phase-two barrier is absorbed by the empty log without IO).
			"container-0": {1: true},
			// container-1: sync 1 covers the prepare record (must succeed so
			// the prepare is durable); sync 2 is its retraction tombstone.
			"container-1": {2: true},
		},
		counts: &sync.Map{},
		errVal: errors.New("injected fsync failure"),
	}
	def := kvDef("kv0", "kv1")
	db := MustOpen(def, twoContainerCfg(storage))
	db.MustLoad("kv0", "store", rel.Row{int64(1), int64(1)}) // local read marker, not logged

	if err := execWithWatchdog(t, db, "kv0", "putRemote", "kv1", int64(2), int64(20)); err == nil {
		t.Fatal("putRemote succeeded despite the injected decision fsync failure")
	}
	// A later acknowledged commit on the coordinator fsyncs its log — with
	// it, the orphan decision bytes and (the fix) their tombstone.
	if err := execWithWatchdog(t, db, "kv0", "put", int64(3), int64(30)); err != nil {
		t.Fatalf("put after failed decision: %v", err)
	}
	// Machine crash: only fsynced bytes survive. Container 1 keeps its
	// durable prepare but lost its tombstone (that fsync failed).
	crashed := mem.CrashCopy()
	db.Close()

	db2 := MustOpen(def, twoContainerCfg(crashed))
	t.Cleanup(db2.Close)
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if v, present := readV(t, db2, "kv1", 2); present {
		t.Fatalf("failed transaction's remote write resurrected on kv1 with %d (orphan decision became durable)", v)
	}
	if v, present := readV(t, db2, "kv0", 3); !present || v != 30 {
		t.Fatalf("acknowledged kv0[3] = (%d, %v), want 30", v, present)
	}
}

package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// This file is the replica role: a read-only database that bootstraps from
// the primary's newest checkpoint blob, tails its live WAL segments through
// the wal.Storage abstraction (wal.ShipCursor), re-appends the shipped frames
// into its own mirror log (wal.MirrorWriter), and applies the records through
// the same install paths recovery uses — so base relations AND secondary
// indexes stay maintained, and a replica can be promoted by simply opening
// its mirror storage as a normal database and running Recover.
//
// Correctness rests on four rules:
//
//  1. Shipping is gated by the primary's durable LSN. The failed-append
//     salvage path can leave complete orphan frames in a sealed segment, but
//     they become durable-covered only in the same fsync as their abort
//     records — so a durable-gated cursor always ships an orphan and its
//     retraction in the same poll, and the applier registers a poll's aborts
//     before applying anything from it.
//
//  2. Apply order per shard is FIFO for commits: a commit record never jumps
//     anything ahead of it, so a commit that read a 2PC participant's write
//     can never install before that participant's prepare resolves. Prepares
//     wait for their decision and are then applied group-atomically across
//     shards; out-of-order installs converge because every install is
//     newest-TID-wins (the same property log replay relies on).
//
//  3. A group applies only behind its fence: the vector of primary durable
//     LSNs captured when its decision was shipped. A participant's prepare is
//     durable before the decision is appended, so once each shard's shipped
//     prefix passes the fence, a missing prepare proves the participant was
//     read-only or its prepare is covered by the bootstrap checkpoint — never
//     that it is still in flight.
//
//  4. Apply rounds run under the replica database's commit gate (the same
//     exclusive lock the primary's checkpointer quiesces with), and read-only
//     transactions commit under its read side. A reader that overlaps a
//     round mid-apply fails OCC validation and retries, so every read that
//     COMMITS observed a round boundary — a consistent committed prefix of
//     the primary's history, with no torn 2PC group and no index/base
//     divergence.
//
// For promotion safety the mirror adds one more invariant: a decision frame
// is never fsynced into the mirror before every participant prepare it
// decides is durably mirrored on its own shard (same-shard prepares precede
// the decision in the segment, so a torn tail can only lose the decision
// first). Recovery on a crashed mirror therefore never commits a torn group.
// Under AckSemiSync the commit path waits for exactly this mirror watermark,
// so an acknowledged commit — including a 2PC decision and all its prepares —
// survives the loss of either side.

// ErrReplicaRead reports a write attempted on a replica: replicas apply the
// primary's log and serve reads; writes must go to the primary.
var ErrReplicaRead = errors.New("engine: replica is read-only (writes must go to the primary)")

// ReplicaOptions configures OpenReplica.
type ReplicaOptions struct {
	// Ack selects the acknowledgment mode this replica imposes on the
	// primary's commit path (default AckAsync).
	Ack AckMode
	// PollInterval is how often the replica polls the primary's logs for new
	// durable records (default 500µs).
	PollInterval time.Duration
	// Storage is the replica's own mirror store, laid out exactly like a
	// primary's durability storage (one sub-store per container) so the
	// replica can be promoted by opening this storage under DurabilityWAL
	// and running Recover. Default: a fresh in-memory store. Pass the same
	// storage across restarts to resume from the local mirror instead of
	// re-bootstrapping.
	Storage wal.Storage
	// SegmentSize is the mirror's rotation threshold (default: the primary's).
	SegmentSize int
}

// Replica is a read-only follower of a primary Database. It maintains its own
// copy of every reactor's relations (base rows and secondary indexes) by
// shipping the primary's WAL, and serves serializable read-only transactions
// and declarative queries against its applied watermark.
type Replica struct {
	primary *Database
	db      *Database // the read-serving inner database
	mode    AckMode
	poll    time.Duration
	storage wal.Storage
	segSize int

	shards    []*replicaShard
	decisions map[uint64]*groupDecision // in-flight 2PC groups by global id

	stopCh chan struct{}
	doneCh chan struct{}

	// mu guards everything below plus the shipping state above against
	// concurrent Stats/WaitCaughtUp snapshots; the poll loop holds it for
	// each full poll-mirror-apply cycle.
	mu           sync.Mutex
	closed       bool
	degraded     bool // mirror failed; detached from the hub
	lastErr      error
	rounds       uint64
	applied      uint64
	rebootstraps uint64
}

// replicaShard is the replica's view of one primary container: a cursor over
// the primary's log, a mirror of its own, and the apply queue.
type replicaShard struct {
	id      int
	primary *Container // primary-side container (log + storage)
	local   *Container // replica-side container (catalogs + domain)
	sub     wal.Storage
	cursor  *wal.ShipCursor
	mirror  *wal.MirrorWriter
	scratch []wal.ShippedRecord

	// queue holds shipped commit and prepare records awaiting apply, in
	// ascending LSN order. staged holds shipped frames not yet durably
	// mirrored (a decision frame may wait here for its participants'
	// prepares — rule four above).
	queue  []wal.Record
	staged []stagedFrame

	// retracted maps a TID to the highest abort LSN seen for it: a record is
	// void iff an abort with a higher LSN carries its TID (the log's
	// LSN-ordered retraction rule). preparedMirrored marks global ids whose
	// prepare on this shard is durably mirrored.
	retracted        map[uint64]uint64
	preparedMirrored map[uint64]bool

	floor         uint64 // checkpoint low-water mark: records at or below are covered
	lastShipped   uint64 // highest LSN shipped off the primary (staged or queued)
	polledDurable uint64 // primary durable LSN whose full prefix has been shipped
	appliedTo     uint64 // watermark: state reflects every LSN at or below this
	appliedRecs   uint64
}

type stagedFrame struct {
	rec   wal.Record
	frame []byte
}

// groupDecision tracks one 2PC group from the moment its decision record is
// seen until it is applied and mirrored.
type groupDecision struct {
	participants []uint64
	tid, lsn     uint64 // the decision record's TID and LSN (coordinator log)
	shard        int    // coordinator shard
	// fence is the per-shard primary durable LSN captured when the decision
	// was shipped; the group applies only once every shard's shipped prefix
	// passes it. nil for decisions recovered from the mirror, whose prepares
	// are local by construction.
	fence    []uint64
	applied  bool
	mirrored bool
	aborted  bool
}

// OpenReplica attaches a new replica to a primary running under
// DurabilityWAL. It bootstraps each shard from the newest checkpoint blob
// (copied byte-for-byte into the mirror store), or — when opts.Storage holds
// a previous incarnation's mirror — recovers from the local mirror and
// resumes shipping where it left off. The replica starts tailing immediately
// on a background goroutine; use WaitCaughtUp to synchronize with it.
func OpenReplica(primary *Database, opts ReplicaOptions) (*Replica, error) {
	if primary.cfg.Durability.Mode != DurabilityWAL {
		return nil, fmt.Errorf("engine: replication requires the primary to run under DurabilityWAL")
	}
	if primary.closed.Load() {
		return nil, errDatabaseClosed
	}
	if opts.Ack == "" {
		opts.Ack = AckAsync
	}
	if opts.Ack != AckAsync && opts.Ack != AckSemiSync {
		return nil, fmt.Errorf("engine: unknown ack mode %q", opts.Ack)
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 500 * time.Microsecond
	}
	if opts.Storage == nil {
		opts.Storage = wal.NewMemStorage()
	}
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = primary.cfg.Durability.SegmentSize
	}

	// The inner database reuses the primary's deployment shape (placement
	// must match: shipped records are applied shard-for-shard) but owns no
	// WAL — the replica manages the mirror itself — and rejects writes.
	cfg := primary.cfg
	cfg.Durability = DurabilityConfig{Mode: DurabilityModeled}
	cfg.GroupCommit = GroupCommitConfig{}
	cfg.Costs.LogWrite = 0 // read-only commits must not pay a modeled log write
	cfg.replica = true
	inner, err := Open(primary.def, cfg)
	if err != nil {
		return nil, fmt.Errorf("engine: open replica database: %w", err)
	}

	r := &Replica{
		primary:   primary,
		db:        inner,
		mode:      opts.Ack,
		poll:      opts.PollInterval,
		storage:   opts.Storage,
		segSize:   opts.SegmentSize,
		decisions: make(map[uint64]*groupDecision),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
	// Attach before reading any primary state: an attached replica clamps
	// checkpoint truncation to its shipped floor (initially zero), so nothing
	// can be deleted out from under the bootstrap.
	primary.repl.attach(r, opts.Ack, len(primary.containers))

	for i, pc := range primary.containers {
		s := &replicaShard{
			id:               i,
			primary:          pc,
			local:            inner.containers[i],
			sub:              opts.Storage.Sub(fmt.Sprintf("container-%d", i)),
			retracted:        make(map[uint64]uint64),
			preparedMirrored: make(map[uint64]bool),
		}
		if err := r.openShard(s); err != nil {
			primary.repl.detach(r)
			inner.Close()
			return nil, fmt.Errorf("engine: replica bootstrap container %d: %w", i, err)
		}
		r.shards = append(r.shards, s)
	}
	// Resolve whatever the mirror replay queued (groups whose decisions were
	// already mirrored) before serving the first read.
	r.mu.Lock()
	r.applyRound()
	r.mu.Unlock()

	go r.run()
	return r, nil
}

// openShard bootstraps one shard: install the newest checkpoint (local if the
// mirror has one, otherwise copied from the primary), replay the local mirror
// into the catalogs and the pending queue, and position cursor and mirror for
// tailing.
func (r *Replica) openShard(s *replicaShard) error {
	cpLocal, _, err := wal.LatestCheckpoint(s.sub)
	if err != nil {
		return err
	}
	cp := cpLocal
	if cp == nil {
		// Fresh bootstrap: copy the primary's newest checkpoint blob verbatim
		// (same sequence number, so a promoted recovery finds it where a
		// primary's would). nil means the primary has never checkpointed and
		// the whole log is still available.
		if cp, err = wal.CopyLatestCheckpoint(s.primary.walStorage, s.sub); err != nil {
			return err
		}
	}
	if cp != nil {
		if err := s.local.installCheckpoint(cp); err != nil {
			return err
		}
		s.floor = cp.LowLSN
	}
	if err := r.replayMirror(s); err != nil {
		return err
	}
	m, err := wal.OpenMirror(s.sub, r.segSize)
	if err != nil {
		return err
	}
	s.mirror = m
	resume := m.LastLSN()
	if cpLocal != nil {
		// While this replica was down the primary may have checkpointed and
		// truncated past our mirror: records in (resume, LowLSN] can be gone
		// from the log. Fast-forward through the primary's newest checkpoint
		// instead of tailing into the hole. (While attached this cannot
		// happen — truncation is clamped to the replication floor.)
		cpPrim, _, err := wal.LatestCheckpoint(s.primary.walStorage)
		if err != nil {
			return err
		}
		if cpPrim != nil && cpPrim.LowLSN > resume {
			cpPrim, err = wal.CopyLatestCheckpoint(s.primary.walStorage, s.sub)
			if err != nil {
				return err
			}
			if cpPrim != nil {
				if err := s.local.installCheckpoint(cpPrim); err != nil {
					return err
				}
				if cpPrim.LowLSN > s.floor {
					s.floor = cpPrim.LowLSN
				}
			}
		}
	}
	s.lastShipped = resume
	// Bootstrap itself ships a full prefix: the installed checkpoint covers
	// every record at or below the floor and the replayed mirror every record
	// at or below resume. Record that coverage so a freshly bootstrapped
	// shard with no newer primary traffic is caught up before its first poll
	// (both LSNs are durable on the primary, so the polledDurable invariant —
	// a durable LSN whose full prefix has been shipped — holds).
	s.polledDurable = s.floor
	if resume > s.polledDurable {
		s.polledDurable = resume
	}
	s.cursor = wal.NewShipCursor(s.primary.walStorage, resume)
	return nil
}

// replayMirror rebuilds shipping state from the local mirror after a replica
// restart: aborts re-populate the retraction map, decisions re-register
// (fence-free — the mirror-safety invariant guarantees their prepares are
// local too), and commits and prepares above the floor re-enter the apply
// queue in LSN order. Nothing is applied here; the caller runs an apply round
// once every shard is replayed.
func (r *Replica) replayMirror(s *replicaShard) error {
	indexes, err := s.sub.List()
	if err != nil {
		return err
	}
	if len(indexes) == 0 {
		return nil
	}
	lg, err := wal.Open(s.sub, wal.Options{SegmentSize: r.segSize})
	if err != nil {
		return err
	}
	defer lg.Close()
	return lg.Replay(func(rec wal.Record) error {
		switch rec.Kind {
		case wal.KindAbort:
			if rec.LSN > s.retracted[rec.TID] {
				s.retracted[rec.TID] = rec.LSN
			}
		case wal.KindDecision:
			if _, ok := r.decisions[rec.GlobalID]; !ok {
				r.decisions[rec.GlobalID] = &groupDecision{
					participants: append([]uint64(nil), rec.Participants...),
					tid:          rec.TID,
					lsn:          rec.LSN,
					shard:        s.id,
					mirrored:     true,
				}
			}
		case wal.KindPrepare:
			s.preparedMirrored[rec.GlobalID] = true
			if rec.LSN > s.floor {
				s.queue = append(s.queue, rec)
			}
		default:
			if rec.LSN > s.floor {
				s.queue = append(s.queue, rec)
			}
		}
		return nil
	})
}

// run is the tailing loop: every poll interval, ship newly durable records,
// mirror them (decision-safely), and apply.
func (r *Replica) run() {
	defer close(r.doneCh)
	ticker := time.NewTicker(r.poll)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-ticker.C:
			r.pollOnce()
		}
	}
}

// pollOnce is one ship → mirror → apply cycle across all shards.
func (r *Replica) pollOnce() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	for _, s := range r.shards {
		durable := s.primary.wal.DurableLSN()
		recs, err := s.cursor.Poll(durable, s.scratch)
		// Records returned alongside an error are real progress the cursor
		// has committed to; dropping them would lose log records forever.
		for i := range recs {
			r.registerShipped(s, &recs[i])
		}
		s.scratch = recs[:0]
		switch {
		case err == nil:
			s.polledDurable = durable
		case errors.Is(err, wal.ErrShipGap):
			// Truncation outran this cursor (the replica fell behind while
			// detached, or raced a checkpoint before its floor registered):
			// re-bootstrap the shard from the newest primary checkpoint.
			if rbErr := r.rebootstrapShard(s); rbErr != nil {
				r.lastErr = rbErr
			}
		default:
			r.lastErr = err
		}
	}
	r.mirrorPass()
	if r.pendingWork() {
		r.applyRound()
	}
}

// registerShipped stages one shipped record for mirroring and routes it into
// the apply machinery: aborts update the retraction map (before anything from
// this poll is applied — see rule one), decisions register their group with a
// freshly captured fence, commits and prepares join the shard's apply queue.
func (r *Replica) registerShipped(s *replicaShard, sr *wal.ShippedRecord) {
	s.lastShipped = sr.LSN
	s.staged = append(s.staged, stagedFrame{rec: sr.Record, frame: sr.Frame})
	switch sr.Kind {
	case wal.KindAbort:
		if sr.LSN > s.retracted[sr.TID] {
			s.retracted[sr.TID] = sr.LSN
		}
	case wal.KindDecision:
		if _, ok := r.decisions[sr.GlobalID]; ok {
			return // already known (mirror recovery overlap)
		}
		// The fence: each participant's prepare was durable on its shard
		// before this decision was appended, so every per-shard durable LSN
		// read *now* bounds those prepares from above.
		fence := make([]uint64, len(r.shards))
		for i, o := range r.shards {
			fence[i] = o.primary.wal.DurableLSN()
		}
		r.decisions[sr.GlobalID] = &groupDecision{
			participants: append([]uint64(nil), sr.Participants...),
			tid:          sr.TID,
			lsn:          sr.LSN,
			shard:        s.id,
			fence:        fence,
		}
	default: // commit or prepare
		s.queue = append(s.queue, sr.Record)
	}
}

// mirrorPass writes staged frames into each shard's mirror and fsyncs,
// holding back any decision frame whose participant prepares are not yet
// durably mirrored (the promotion-safety invariant). Held decisions block the
// frames behind them — the mirror must stay an ascending-LSN prefix — and are
// retried after the prepares land, which the outer loop converges on because
// a decision only ever waits on strictly earlier prepares. Each successful
// sync advances the replication hub, releasing semi-sync commit
// acknowledgments.
func (r *Replica) mirrorPass() {
	if r.degraded {
		return
	}
	for {
		progressed := false
		for _, s := range r.shards {
			n := 0
			for n < len(s.staged) {
				sf := &s.staged[n]
				if sf.rec.Kind == wal.KindDecision && !r.decisionMirrorSafe(s, sf) {
					break
				}
				n++
			}
			if n == 0 {
				continue
			}
			var err error
			for i := 0; i < n; i++ {
				if err = s.mirror.Append(s.staged[i].rec.LSN, s.staged[i].frame); err != nil {
					break
				}
			}
			if err == nil {
				err = s.mirror.Sync()
			}
			if err != nil {
				// The mirror is broken: stop promising durability. Seal what is
				// already durable, keeping the close error too — Stats().Err is
				// how an operator learns *why* the replica degraded. Detaching
				// releases semi-sync waiters (degrade to async, MySQL-style)
				// and unfreezes primary truncation; the replica keeps applying
				// for read availability and re-ships after a restart.
				err = fmt.Errorf("engine: replica: mirror container %d failed, degraded to async: %w", s.id, err)
				if cerr := s.mirror.Close(); cerr != nil {
					err = errors.Join(err, fmt.Errorf("engine: replica: seal degraded mirror container %d: %w", s.id, cerr))
				}
				r.degraded = true
				r.lastErr = err
				r.primary.repl.detach(r)
				return
			}
			for i := 0; i < n; i++ {
				sf := &s.staged[i]
				switch sf.rec.Kind {
				case wal.KindPrepare:
					s.preparedMirrored[sf.rec.GlobalID] = true
				case wal.KindDecision:
					if d, ok := r.decisions[sf.rec.GlobalID]; ok {
						d.mirrored = true
						r.maybeReleaseGroup(sf.rec.GlobalID, d)
					}
				}
			}
			rest := len(s.staged) - n
			copy(s.staged, s.staged[n:])
			for i := rest; i < len(s.staged); i++ {
				s.staged[i] = stagedFrame{}
			}
			s.staged = s.staged[:rest]
			r.primary.repl.advance(r, s.id, s.mirror.DurableLSN())
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// decisionMirrorSafe reports whether a staged decision frame may be made
// durable in the mirror: every write participant's prepare must be durably
// mirrored on its shard first. A same-shard prepare precedes the decision in
// this shard's own staged prefix, so segment write order (prefix durability)
// covers it. A participant with no prepare anywhere is read-only or
// checkpoint-covered — provable once that shard's shipped prefix passes the
// group's fence.
func (r *Replica) decisionMirrorSafe(s *replicaShard, sf *stagedFrame) bool {
	d := r.decisions[sf.rec.GlobalID]
	for _, p := range sf.rec.Participants {
		pi := int(p)
		if pi < 0 || pi >= len(r.shards) || pi == s.id {
			continue
		}
		ps := r.shards[pi]
		if ps.preparedMirrored[sf.rec.GlobalID] {
			continue
		}
		if stagedHasPrepare(ps, sf.rec.GlobalID) {
			return false // its prepare mirrors this pass; retry next iteration
		}
		if d == nil || d.fence == nil || ps.polledDurable >= d.fence[pi] {
			continue // proven read-only or covered by the bootstrap checkpoint
		}
		return false // not yet shipped far enough to prove anything
	}
	return true
}

func stagedHasPrepare(s *replicaShard, gid uint64) bool {
	for i := range s.staged {
		if s.staged[i].rec.Kind == wal.KindPrepare && s.staged[i].rec.GlobalID == gid {
			return true
		}
	}
	return false
}

// applyRound applies everything applicable to a fixpoint under the replica
// database's commit gate, then advances each shard's watermark. Holding the
// gate exclusively for the whole round is what makes round boundaries the
// only states a committed read can observe (rule four).
func (r *Replica) applyRound() {
	r.db.commitGate.Lock()
	for {
		progress := false
		for _, s := range r.shards {
			if r.drainHead(s) {
				progress = true
			}
		}
		for gid, d := range r.decisions {
			if !d.applied && r.tryApplyGroup(gid, d) {
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for _, s := range r.shards {
		if len(s.queue) > 0 {
			s.appliedTo = s.queue[0].LSN - 1
		} else {
			s.appliedTo = s.lastShipped
		}
		if s.appliedTo < s.floor {
			s.appliedTo = s.floor
		}
	}
	r.rounds++
	r.db.commitGate.Unlock()
}

// drainHead applies the shard's queue strictly in order until it empties or
// hits a prepare still waiting for its decision. Commits never jump; records
// covered by the floor or voided by a retraction pop without applying.
func (r *Replica) drainHead(s *replicaShard) bool {
	progress := false
	for len(s.queue) > 0 {
		rec := &s.queue[0]
		if rec.LSN <= s.floor || s.retracted[rec.TID] > rec.LSN {
			s.removeAt(0)
			progress = true
			continue
		}
		if rec.Kind == wal.KindPrepare {
			d := r.decisions[rec.GlobalID]
			if d == nil || !d.applied {
				return progress // blocked: decision not shipped or group not ready
			}
			// The group resolved without consuming this prepare (aborted
			// resolution); drop it.
			s.removeAt(0)
			progress = true
			continue
		}
		r.applyWrites(s, rec)
		s.removeAt(0)
		progress = true
	}
	return progress
}

// tryApplyGroup applies one decided 2PC group atomically across its
// participant shards, once its fence has passed and every located prepare has
// no pending commit ahead of it (commits never jump). Participants whose
// prepare is absent are read-only, checkpoint-covered, or retracted — the
// fence proves the prepare cannot still be in flight.
func (r *Replica) tryApplyGroup(gid uint64, d *groupDecision) bool {
	if d.fence != nil {
		for i, f := range d.fence {
			if r.shards[i].polledDurable < f {
				return false
			}
		}
	}
	coord := r.shards[d.shard]
	// A retracted decision (the failed-force salvage path made it void)
	// resolves the group as aborted: exactly what the primary's own recovery
	// would do, since replay skips LSN-retracted records.
	aborted := coord.retracted[d.tid] > d.lsn

	type located struct {
		s   *replicaShard
		idx int
	}
	var locs []located
	for _, p := range d.participants {
		pi := int(p)
		if pi < 0 || pi >= len(r.shards) {
			continue
		}
		s := r.shards[pi]
		idx, commitAhead := -1, false
		for i := range s.queue {
			q := &s.queue[i]
			if q.Kind == wal.KindPrepare && q.GlobalID == gid {
				idx = i
				break
			}
			if q.Kind == wal.KindCommit && q.LSN > s.floor && s.retracted[q.TID] <= q.LSN {
				commitAhead = true
			}
		}
		if idx < 0 {
			continue
		}
		if commitAhead {
			return false // preserve per-shard commit order; drain first
		}
		locs = append(locs, located{s, idx})
	}
	for _, l := range locs {
		q := &l.s.queue[l.idx]
		if !aborted && q.LSN > l.s.floor && l.s.retracted[q.TID] <= q.LSN {
			r.applyWrites(l.s, q)
		}
		l.s.removeAt(l.idx)
	}
	d.applied = true
	d.aborted = aborted
	r.maybeReleaseGroup(gid, d)
	return true
}

// maybeReleaseGroup frees a group's bookkeeping once it is both applied and
// its decision durably mirrored — before that, the mirror pass still needs
// the prepared-mirrored index to hold the decision frame back safely.
func (r *Replica) maybeReleaseGroup(gid uint64, d *groupDecision) {
	if !d.applied || !d.mirrored {
		return
	}
	delete(r.decisions, gid)
	for _, s := range r.shards {
		delete(s.preparedMirrored, gid)
	}
}

// applyWrites installs one record's writes through the shipped-write install
// path: newest-TID-wins on the primary record, secondary indexes maintained
// under the structural guard, and the domain's TID space advanced past the
// record (so a promoted replica generates strictly newer TIDs).
func (r *Replica) applyWrites(s *replicaShard, rec *wal.Record) {
	for _, w := range rec.Writes {
		reactor, relation, key, ok := splitWALKey(w.Key)
		if !ok {
			r.lastErr = fmt.Errorf("engine: replica: malformed WAL key %q on container %d", w.Key, s.id)
			continue
		}
		cat := s.local.catalogs[reactor]
		if cat == nil {
			r.lastErr = fmt.Errorf("engine: replica: reactor %q not mapped to container %d", reactor, s.id)
			continue
		}
		tbl := cat.Table(relation)
		if tbl == nil {
			r.lastErr = fmt.Errorf("engine: replica: unknown relation %s.%s on container %d", reactor, relation, s.id)
			continue
		}
		kr, _ := tbl.GetOrInsert([]byte(key))
		s.local.domain.ApplyShippedWrite(kr, tbl, rec.TID, w.Data, w.Delete)
	}
	s.local.domain.ObserveRecoveredTID(rec.TID)
	s.appliedRecs++
	r.applied++
}

// removeAt splices one record out of the shard's queue.
func (s *replicaShard) removeAt(i int) {
	copy(s.queue[i:], s.queue[i+1:])
	s.queue[len(s.queue)-1] = wal.Record{}
	s.queue = s.queue[:len(s.queue)-1]
	if len(s.queue) == 0 {
		s.queue = nil
	}
}

// rebootstrapShard recovers a shard whose cursor hit truncated log segments:
// install the primary's newest checkpoint over the current state (checkpoint
// rows carry tombstones for absorbed deletions and newest-TID-wins install
// converges live rows, so installing over stale state is exact) and resume
// shipping from where the cursor stopped — everything in the hole is at or
// below the new floor.
func (r *Replica) rebootstrapShard(s *replicaShard) error {
	cp, err := wal.CopyLatestCheckpoint(s.primary.walStorage, s.sub)
	if err != nil {
		return err
	}
	if cp == nil {
		return fmt.Errorf("engine: replica: shipping gap on container %d with no primary checkpoint to re-bootstrap from", s.id)
	}
	r.db.commitGate.Lock()
	err = s.local.installCheckpoint(cp)
	if err == nil && cp.LowLSN > s.floor {
		s.floor = cp.LowLSN
	}
	if err == nil && s.appliedTo < s.floor {
		// The installed checkpoint covers everything at or below the new
		// floor. Without this the applied watermark stays stale until the next
		// apply round with pending work, and Stats would overstate Lag by the
		// width of the truncation hole.
		s.appliedTo = s.floor
	}
	r.db.commitGate.Unlock()
	if err != nil {
		return err
	}
	s.cursor = wal.NewShipCursor(s.primary.walStorage, s.lastShipped)
	r.rebootstraps++
	return nil
}

// pendingWork reports whether an apply round could make progress.
func (r *Replica) pendingWork() bool {
	for _, s := range r.shards {
		if len(s.queue) > 0 {
			return true
		}
	}
	for _, d := range r.decisions {
		if !d.applied {
			return true
		}
	}
	return false
}

// Close detaches the replica from the primary (releasing any semi-sync
// waiter), stops the tailing loop, seals the mirror and closes the inner
// database. Staged-but-unmirrored frames are simply re-shipped by the next
// incarnation.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.primary.repl.detach(r)
	close(r.stopCh)
	<-r.doneCh
	for _, s := range r.shards {
		if s.mirror != nil {
			if err := s.mirror.Close(); err != nil {
				r.mu.Lock()
				r.lastErr = fmt.Errorf("engine: replica: close mirror container %d: %w", s.id, err)
				r.mu.Unlock()
			}
		}
	}
	r.db.Close()
}

// Query runs a declarative read-only query against the replica's applied
// watermark: the same serializable machinery as on a primary, validated
// against the apply rounds, so the result is a consistent committed prefix of
// the primary's history.
func (r *Replica) Query(q *rel.Query) (*rel.Result, error) {
	return r.db.Query(q)
}

// Execute runs a read-only procedure on the replica. Any write the procedure
// attempts fails with ErrReplicaRead and aborts the transaction.
func (r *Replica) Execute(reactor, procedure string, args ...any) (any, error) {
	return r.db.Execute(reactor, procedure, args...)
}

// ReadRow reads one row non-transactionally at a round boundary.
func (r *Replica) ReadRow(reactor, relation string, keyVals ...any) (rel.Row, error) {
	r.db.commitGate.RLock()
	defer r.db.commitGate.RUnlock()
	return r.db.ReadRow(reactor, relation, keyVals...)
}

// Database returns the replica's inner read-serving database, for inspection
// (TableLen, Stats) — never for writes, which it rejects.
func (r *Replica) Database() *Database { return r.db }

// Storage returns the replica's mirror store. Opening it under DurabilityWAL
// and running Recover promotes the replica's durable state to a primary.
func (r *Replica) Storage() wal.Storage { return r.storage }

// Mode returns the replica's acknowledgment mode.
func (r *Replica) Mode() AckMode { return r.mode }

// WaitCaughtUp blocks until every shard has shipped, mirrored and applied the
// primary's full durable prefix, or the timeout elapses. It is primarily a
// test and benchmark synchronization point; the primary should be quiescent,
// otherwise the target moves.
func (r *Replica) WaitCaughtUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	// Re-check faster than the shipping poll when that poll is slow: the
	// sleep bounds how far past the deadline this can run, and a long
	// PollInterval must not turn a short timeout into an hour-long wait.
	step := r.poll
	if max := 5 * time.Millisecond; step > max {
		step = max
	}
	for {
		if r.caughtUp() {
			return nil
		}
		if time.Now().After(deadline) {
			st := r.Stats()
			return fmt.Errorf("engine: replica not caught up after %v: %+v", timeout, st.Shards)
		}
		time.Sleep(step)
	}
}

func (r *Replica) caughtUp() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastErr != nil && r.degraded {
		return false
	}
	for _, s := range r.shards {
		durable := s.primary.wal.DurableLSN()
		if s.polledDurable < durable || len(s.queue) > 0 || len(s.staged) > 0 {
			return false
		}
	}
	for _, d := range r.decisions {
		if !d.applied {
			return false
		}
	}
	return true
}

// ReplicaStats is a snapshot of a replica's shipping and apply progress.
type ReplicaStats struct {
	Mode AckMode
	// Degraded reports that the mirror failed and the replica detached from
	// the primary's hub (no semi-sync promise, no truncation clamp).
	Degraded bool
	// Rounds counts apply rounds; Applied counts records installed.
	Rounds  uint64
	Applied uint64
	// Rebootstraps counts checkpoint fast-forwards after shipping gaps.
	Rebootstraps uint64
	Err          string
	Shards       []ReplicaShardStats
}

// ReplicaShardStats describes one shard's progress against its primary
// container.
type ReplicaShardStats struct {
	Container int
	// PrimaryDurable is the primary log's durable LSN at snapshot time;
	// Shipped, Mirrored and Applied are the replica's corresponding
	// watermarks. Shipped and Mirrored are reported no lower than Floor: a
	// checkpoint fast-forward covers everything at or below the floor without
	// re-shipping it, and a raw cursor position below the floor would read as
	// the replica regressing. Lag is PrimaryDurable - Applied saturated at
	// zero: the freshness gap a read on this shard can observe.
	PrimaryDurable uint64
	Shipped        uint64
	Mirrored       uint64
	Applied        uint64
	Lag            uint64
	// Pending is the number of queued records that can still apply (entries
	// at or below the floor or voided by a retraction are excluded — they pop
	// without applying); Floor is the checkpoint low-water mark.
	Pending int
	Floor   uint64
}

// lagRecords is the freshness gap durable - applied, saturated at zero. The
// applied watermark can legitimately pass a sampled durable LSN: a checkpoint
// fast-forward raises it to the checkpoint floor in one step, and a mirror
// re-attached to a promoted (or otherwise restarted) primary can resume above
// that primary's durable LSN until it catches back up. The unguarded uint64
// subtraction wraps those cases to ~2^64, and a lag-aware router consuming
// Stats would route around a healthy replica forever.
func lagRecords(durable, applied uint64) uint64 {
	if durable <= applied {
		return 0
	}
	return durable - applied
}

// floorClamp reports a shipping watermark no lower than the checkpoint floor.
func floorClamp(lsn, floor uint64) uint64 {
	if lsn < floor {
		return floor
	}
	return lsn
}

// pendingCount is the number of queued records that will actually install:
// sub-floor and retracted entries drain without applying, so counting them
// would overstate the backlog after a fast-forward.
func (s *replicaShard) pendingCount() int {
	n := 0
	for i := range s.queue {
		rec := &s.queue[i]
		if rec.LSN > s.floor && s.retracted[rec.TID] <= rec.LSN {
			n++
		}
	}
	return n
}

// Stats returns a consistent snapshot of the replica's progress.
func (r *Replica) Stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ReplicaStats{
		Mode:         r.mode,
		Degraded:     r.degraded,
		Rounds:       r.rounds,
		Applied:      r.applied,
		Rebootstraps: r.rebootstraps,
	}
	if r.lastErr != nil {
		st.Err = r.lastErr.Error()
	}
	for _, s := range r.shards {
		durable := s.primary.wal.DurableLSN()
		sh := ReplicaShardStats{
			Container:      s.id,
			PrimaryDurable: durable,
			Shipped:        floorClamp(s.lastShipped, s.floor),
			Applied:        s.appliedTo,
			Lag:            lagRecords(durable, s.appliedTo),
			Pending:        s.pendingCount(),
			Floor:          s.floor,
		}
		if s.mirror != nil {
			sh.Mirrored = floorClamp(s.mirror.DurableLSN(), s.floor)
		}
		st.Shards = append(st.Shards, sh)
	}
	return st
}

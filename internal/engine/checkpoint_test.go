package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// ckptCfg is a single-container WAL deployment with a tiny segment size so
// checkpoint truncation has many sealed segments to reclaim.
func ckptCfg(storage wal.Storage) Config {
	cfg := walCfg(storage)
	cfg.Durability.SegmentSize = 512
	return cfg
}

// TestCheckpointSuffixRecoveryAndTruncation is the acceptance test of the
// recovery fast path: after a checkpoint, recovery replays only the log
// suffix (asserted via the replayed-record count) and segments wholly below
// the low-water mark are deleted from storage.
func TestCheckpointSuffixRecoveryAndTruncation(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := ckptCfg(storage)
	def := kvDef("kv0")

	db := MustOpen(def, cfg)
	const before, after = 40, 7
	for i := 0; i < before; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	segsBefore, err := storage.Sub("container-0").List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(segsBefore) < 3 {
		t.Fatalf("workload produced only %d segments; segment size too large for the test", len(segsBefore))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	cs := db.CheckpointStats()
	if len(cs) != 1 || !cs[0].Enabled || cs[0].Checkpoints != 1 || cs[0].LastSeq != 1 {
		t.Fatalf("CheckpointStats after one checkpoint = %+v", cs)
	}
	if cs[0].SegmentsDeleted == 0 {
		t.Fatalf("checkpoint deleted no segments (stats %+v)", cs[0])
	}
	segsAfter, err := storage.Sub("container-0").List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("truncation left %d of %d segments on storage", len(segsAfter), len(segsBefore))
	}
	for i := 0; i < after; i++ {
		if _, err := db.Execute("kv0", "put", int64(1000+i), int64(i)); err != nil {
			t.Fatalf("post-checkpoint put %d: %v", i, err)
		}
	}
	db.Close()

	db2 := MustOpen(def, ckptCfg(storage))
	t.Cleanup(db2.Close)
	replayed, err := db2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if replayed != after {
		t.Fatalf("Recover replayed %d transactions, want only the %d-record suffix", replayed, after)
	}
	cs = db2.CheckpointStats()
	if cs[0].RestoredRows != before || cs[0].ReplayFloor == 0 || cs[0].CorruptSkipped != 0 {
		t.Fatalf("recovery checkpoint stats = %+v, want %d restored rows and a non-zero floor", cs[0], before)
	}
	for i := 0; i < before; i++ {
		if v, present := readV(t, db2, "kv0", int64(i)); !present || v != int64(100+i) {
			t.Fatalf("checkpointed key %d = (%d, %v), want %d", i, v, present, 100+i)
		}
	}
	for i := 0; i < after; i++ {
		if v, present := readV(t, db2, "kv0", int64(1000+i)); !present || v != int64(i) {
			t.Fatalf("suffix key %d = (%d, %v), want %d", 1000+i, v, present, i)
		}
	}

	// The recovered incarnation must checkpoint again (sequence continues)
	// and survive another restart on the new checkpoint alone.
	if _, err := db2.Execute("kv0", "put", int64(0), int64(9999)); err != nil {
		t.Fatalf("post-recovery put: %v", err)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatalf("post-recovery Checkpoint: %v", err)
	}
	if cs := db2.CheckpointStats(); cs[0].LastSeq != 2 {
		t.Fatalf("post-recovery checkpoint sequence = %d, want 2", cs[0].LastSeq)
	}
	db2.Close()

	db3 := MustOpen(def, ckptCfg(storage))
	t.Cleanup(db3.Close)
	if replayed, err := db3.Recover(); err != nil || replayed != 0 {
		t.Fatalf("third incarnation Recover = (%d, %v), want a pure checkpoint restore", replayed, err)
	}
	if v, present := readV(t, db3, "kv0", 0); !present || v != 9999 {
		t.Fatalf("key 0 after second checkpoint = (%d, %v), want 9999", v, present)
	}
}

// TestCheckpointCapturesLoaderData is the loader-gap regression test: loaders
// populate base rows outside the log, so plain replay cannot restore them —
// but a checkpoint taken after the bulk load captures them, and recovery from
// that checkpoint no longer needs the loader re-run. (The gap remains for
// logs without any checkpoint: base data written before the first checkpoint
// is only recoverable by re-running loaders first, as
// TestRecoverAfterLoaderBootstrap documents.)
func TestCheckpointCapturesLoaderData(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := ckptCfg(storage)
	def := kvDef("kv0")

	db := MustOpen(def, cfg)
	db.MustLoad("kv0", "store", rel.Row{int64(1), int64(11)})
	db.MustLoad("kv0", "store", rel.Row{int64(2), int64(22)})
	if _, err := db.Execute("kv0", "put", int64(2), int64(222)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := db.Execute("kv0", "put", int64(3), int64(33)); err != nil {
		t.Fatalf("post-checkpoint put: %v", err)
	}
	db.Close()

	// No loader re-run: the checkpoint alone must restore the base rows.
	db2 := MustOpen(def, ckptCfg(storage))
	t.Cleanup(db2.Close)
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if v, present := readV(t, db2, "kv0", 1); !present || v != 11 {
		t.Fatalf("loader-populated key 1 = (%d, %v), want 11 without re-running the loader", v, present)
	}
	if v, present := readV(t, db2, "kv0", 2); !present || v != 222 {
		t.Fatalf("key 2 = (%d, %v), want logged 222 over loaded 22", v, present)
	}
	if v, present := readV(t, db2, "kv0", 3); !present || v != 33 {
		t.Fatalf("suffix key 3 = (%d, %v), want 33", v, present)
	}
}

// TestCheckpointTombstonesDeletedRows covers the deletion/loader corner: a
// loader-populated row is deleted, the checkpoint absorbs the delete (whose
// log record truncation may erase), and the next incarnation re-runs the
// loader before Recover — the documented bootstrap flow. The checkpoint's
// tombstone must keep the row dead; without it the re-loaded base row would
// resurrect.
func TestCheckpointTombstonesDeletedRows(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := ckptCfg(storage)
	def := kvDef("kv0")

	db := MustOpen(def, cfg)
	db.MustLoad("kv0", "store", rel.Row{int64(1), int64(11)})
	db.MustLoad("kv0", "store", rel.Row{int64(2), int64(22)})
	if _, err := db.Execute("kv0", "del", int64(1)); err != nil {
		t.Fatalf("del: %v", err)
	}
	// Enough traffic to rotate the delete record into a sealed segment, so
	// the checkpoint's truncation genuinely erases it.
	for i := 10; i < 40; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if cs := db.CheckpointStats(); cs[0].SegmentsDeleted == 0 {
		t.Fatalf("checkpoint truncated nothing; the delete record survived (stats %+v)", cs[0])
	}
	db.Close()

	db2 := MustOpen(def, ckptCfg(storage))
	t.Cleanup(db2.Close)
	// The documented loader flow: re-populate base data, then Recover.
	db2.MustLoad("kv0", "store", rel.Row{int64(1), int64(11)})
	db2.MustLoad("kv0", "store", rel.Row{int64(2), int64(22)})
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if v, present := readV(t, db2, "kv0", 1); present {
		t.Fatalf("deleted key 1 resurrected by the re-run loader with %d", v)
	}
	if v, present := readV(t, db2, "kv0", 2); !present || v != 22 {
		t.Fatalf("loaded key 2 = (%d, %v), want 22", v, present)
	}
}

// failCkptWriteStorage fails WriteCheckpoint inside one named sub-storage.
type failCkptWriteStorage struct {
	wal.Storage
	name     string
	failName string
	errVal   error
}

func (s *failCkptWriteStorage) Sub(name string) wal.Storage {
	return &failCkptWriteStorage{Storage: s.Storage.Sub(name), name: name, failName: s.failName, errVal: s.errVal}
}

func (s *failCkptWriteStorage) WriteCheckpoint(seq uint64, data []byte) error {
	if s.name == s.failName {
		return s.errVal
	}
	return s.Storage.WriteCheckpoint(seq, data)
}

// TestCheckpointRoundIsAtomicAcrossContainers pins the round barrier: 2PC
// decision records live only on the coordinator's log, so no container may
// truncate until every container's checkpoint of the round is durable. When
// container 1's checkpoint write fails, container 0 — already durably
// checkpointed — must not have truncated, and a restart recovering the two
// containers from different rounds must still find the decision record the
// participant's replayed prepare needs.
func TestCheckpointRoundIsAtomicAcrossContainers(t *testing.T) {
	mem := wal.NewMemStorage()
	storage := &failCkptWriteStorage{
		Storage:  wal.Storage(mem),
		failName: "container-1",
		errVal:   errors.New("injected checkpoint write failure"),
	}
	cfg := Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: storage, SegmentSize: 192},
		Placement: func(reactor string) int {
			if reactor == "kv0" {
				return 0
			}
			return 1
		},
	}
	def := kvDef("kv0", "kv1")
	db := MustOpen(def, cfg)

	// Rotate the 2PC's records (prepare on kv1, decision on kv0's log) into
	// sealed segments so container 0's truncation — if it wrongly ran —
	// would delete the decision.
	if _, err := db.Execute("kv0", "copyTo", "kv1", int64(2), int64(20)); err != nil {
		t.Fatalf("copyTo: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Execute("kv0", "put", int64(100+i), int64(i)); err != nil {
			t.Fatalf("put: %v", err)
		}
		if _, err := db.Execute("kv1", "put", int64(200+i), int64(i)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded despite the injected container-1 write failure")
	}
	for _, cs := range db.CheckpointStats() {
		if cs.SegmentsDeleted != 0 {
			t.Fatalf("container %d truncated %d segments in a round whose checkpoints never all landed",
				cs.Container, cs.SegmentsDeleted)
		}
	}
	db.Close()

	// Restart: container 0 recovers from its round-1 checkpoint, container 1
	// from full replay — mixed rounds. The decision record must still
	// resolve container 1's replayed prepare.
	db2 := MustOpen(def, Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: wal.Storage(mem)},
		Placement:             cfg.Placement,
	})
	t.Cleanup(db2.Close)
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	cs := db2.CheckpointStats()
	if cs[0].RestoredRows == 0 || cs[1].RestoredRows != 0 {
		t.Fatalf("expected mixed-round recovery (c0 from checkpoint, c1 full replay), got %+v", cs)
	}
	for _, r := range []string{"kv0", "kv1"} {
		if v, present := readV(t, db2, r, 2); !present || v != 20 {
			t.Fatalf("2PC write on %s = (%d, %v) after mixed-round recovery, want 20 (decision lost?)", r, v, present)
		}
	}
}

// TestCorruptCheckpointFallsBackToFullReplay flips a byte in the stored
// checkpoint blob: recovery must skip it (ErrCorrupt, no partial load) and
// fall back to full log replay. The segment size is left at the default so
// truncation reclaims nothing and the full log is still there to replay.
func TestCorruptCheckpointFallsBackToFullReplay(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := walCfg(storage)
	def := kvDef("kv0")

	db := MustOpen(def, cfg)
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	db.Close()

	sub := storage.Sub("container-0")
	blob, err := sub.ReadCheckpoint(1)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := sub.WriteCheckpoint(1, blob); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}

	db2 := MustOpen(def, walCfg(storage))
	t.Cleanup(db2.Close)
	replayed, err := db2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if replayed != n {
		t.Fatalf("fallback replayed %d transactions, want the full %d-record history", replayed, n)
	}
	cs := db2.CheckpointStats()
	if cs[0].CorruptSkipped != 1 || cs[0].RestoredRows != 0 || cs[0].ReplayFloor != 0 {
		t.Fatalf("fallback stats = %+v, want one skipped checkpoint and no restored rows", cs[0])
	}
	for i := 0; i < n; i++ {
		if v, present := readV(t, db2, "kv0", int64(i)); !present || v != int64(100+i) {
			t.Fatalf("key %d = (%d, %v), want %d", i, v, present, 100+i)
		}
	}
}

// TestBackgroundCheckpointer runs the timer-driven checkpointer under load
// and checks that checkpoints happen on their own, respect the byte
// threshold bookkeeping, and leave a recoverable state behind.
func TestBackgroundCheckpointer(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := ckptCfg(storage)
	cfg.Durability.CheckpointInterval = 2 * time.Millisecond
	cfg.Durability.CheckpointBytes = 64
	def := kvDef("kv0")

	db := MustOpen(def, cfg)
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		return db.CheckpointStats()[0].Checkpoints >= 1
	})
	db.Close()

	db2 := MustOpen(def, ckptCfg(storage))
	t.Cleanup(db2.Close)
	replayed, err := db2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if replayed >= n {
		t.Fatalf("recovery replayed %d of %d transactions despite a background checkpoint", replayed, n)
	}
	for i := 0; i < n; i++ {
		if v, present := readV(t, db2, "kv0", int64(i)); !present || v != int64(i) {
			t.Fatalf("key %d = (%d, %v), want %d", i, v, present, i)
		}
	}
}

// TestCheckpointRequiresWALMode ensures the config knobs cannot be combined
// with the modeled ablation, and that on-demand Checkpoint is a no-op there.
func TestCheckpointRequiresWALMode(t *testing.T) {
	cfg := Config{Containers: 1, ExecutorsPerContainer: 1,
		Durability: DurabilityConfig{CheckpointInterval: time.Second}}
	if _, err := Open(kvDef("kv0"), cfg); err == nil {
		t.Fatal("Open accepted CheckpointInterval without DurabilityWAL")
	}
	db := MustOpen(kvDef("kv0"), Config{Containers: 1, ExecutorsPerContainer: 1})
	t.Cleanup(db.Close)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint under the modeled ablation = %v, want no-op", err)
	}
}

// --- Truncation-safety property test -----------------------------------------

// auditStorage wraps a wal.Storage tree and records every segment's decoded
// records at the moment the segment is deleted, so a test can verify after
// the fact that truncation never discarded a record recovery still needed.
type auditStorage struct {
	wal.Storage
	audit *deletionAudit
}

type deletionAudit struct {
	mu      sync.Mutex
	deleted []wal.Record // records of deleted segments, in deletion order
}

func (s *auditStorage) Sub(name string) wal.Storage {
	return &auditStorage{Storage: s.Storage.Sub(name), audit: s.audit}
}

func (s *auditStorage) DeleteSegment(index uint64) error {
	buf, err := s.Storage.ReadSegment(index)
	if err != nil {
		return err
	}
	recs, _ := wal.DecodeAll(buf)
	s.audit.mu.Lock()
	s.audit.deleted = append(s.audit.deleted, recs...)
	s.audit.mu.Unlock()
	return s.Storage.DeleteSegment(index)
}

// TestTruncationSafetyProperty drives a random-ish concurrent workload with
// in-flight two-phase commits while a checkpointer loops, then audits every
// record truncation discarded: no deleted prepare record may be undecided and
// unretracted (its transaction must have been resolved before its segment
// died), and no surviving prepare may have had its resolving decision
// deleted from under it (recovery would presume-abort a committed
// transaction). Finally a clean restart must recover exactly the last
// acknowledged value of every key.
func TestTruncationSafetyProperty(t *testing.T) {
	mem := wal.NewMemStorage()
	audit := &deletionAudit{}
	storage := &auditStorage{Storage: wal.Storage(mem), audit: audit}
	cfg := Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 4, Window: 200 * time.Microsecond},
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: storage, SegmentSize: 512},
		Placement: func(reactor string) int {
			if reactor == "kv0" {
				return 0
			}
			return 1
		},
	}
	def := kvDef("kv0", "kv1")
	db := MustOpen(def, cfg)

	// Workers own disjoint keys, so every op must commit; copyTo keeps
	// cross-container 2PC in flight throughout the run.
	const workers, ops = 4, 60
	type final struct {
		reactor string
		k, v    int64
	}
	results := make([][]final, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src, dst := "kv0", "kv1"
			if w%2 == 1 {
				src, dst = dst, src
			}
			for i := 0; i < ops; i++ {
				k := int64(w*1000 + i%7)
				v := int64(w*100000 + i)
				// Workers write disjoint keys, but concurrent inserts still
				// conflict on the table's structural phantom guard; retry
				// those — only acknowledged ops enter the expected state.
				for {
					var err error
					if i%3 == 0 {
						_, err = db.Execute(src, "put", k, v)
						if err == nil {
							results[w] = append(results[w], final{src, k, v})
						}
					} else {
						_, err = db.Execute(src, "copyTo", dst, k, v)
						if err == nil {
							results[w] = append(results[w], final{src, k, v}, final{dst, k, v})
						}
					}
					if err == nil {
						break
					}
					if !errors.Is(err, ErrConflict) {
						t.Errorf("worker %d op %d: %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	ckptDone := make(chan struct{})
	ckptStop := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-ckptStop:
				return
			default:
				if err := db.Checkpoint(); err != nil {
					t.Errorf("Checkpoint: %v", err)
					return
				}
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(ckptStop)
	<-ckptDone
	if t.Failed() {
		db.Close()
		return
	}
	// One final checkpoint on the quiesced database so truncation has
	// certainly seen resolved 2PC records to reclaim.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("final Checkpoint: %v", err)
	}
	var segsDeleted uint64
	for _, cs := range db.CheckpointStats() {
		segsDeleted += cs.SegmentsDeleted
	}
	if segsDeleted == 0 {
		t.Fatal("no segments were truncated; the property test exercised nothing")
	}
	db.Close()

	// Gather every record still on storage (both containers' logs), tagged
	// with its log's final replay floor: records at or below the floor are
	// covered by the newest checkpoint's snapshot and recovery never reads
	// them, so they may survive (or lose their decisions) without
	// consequence. Only records *above* the floor are live for recovery.
	type survRec struct {
		rec   wal.Record
		floor uint64 // the containing log's replay floor
	}
	var surviving []survRec
	for _, sub := range []string{"container-0", "container-1"} {
		s := mem.Sub(sub)
		cp, _, err := wal.LatestCheckpoint(s)
		if err != nil {
			t.Fatalf("LatestCheckpoint %s: %v", sub, err)
		}
		var low uint64
		if cp != nil {
			low = cp.LowLSN
		}
		idxs, err := s.List()
		if err != nil {
			t.Fatalf("List %s: %v", sub, err)
		}
		for _, idx := range idxs {
			buf, err := s.ReadSegment(idx)
			if err != nil {
				t.Fatalf("ReadSegment: %v", err)
			}
			recs, _ := wal.DecodeAll(buf)
			for _, rec := range recs {
				surviving = append(surviving, survRec{rec: rec, floor: low})
			}
		}
	}
	audit.mu.Lock()
	deleted := append([]wal.Record(nil), audit.deleted...)
	audit.mu.Unlock()

	decided := make(map[uint64]bool)   // global id -> decision existed anywhere, ever
	retracted := make(map[uint64]bool) // TID -> abort record existed anywhere, ever
	survivingDecision := make(map[uint64]bool)
	for _, sr := range surviving {
		switch sr.rec.Kind {
		case wal.KindDecision:
			decided[sr.rec.GlobalID] = true
			survivingDecision[sr.rec.GlobalID] = true
		case wal.KindAbort:
			retracted[sr.rec.TID] = true
		}
	}
	for _, rec := range deleted {
		switch rec.Kind {
		case wal.KindDecision:
			decided[rec.GlobalID] = true
		case wal.KindAbort:
			retracted[rec.TID] = true
		}
	}
	// P1: truncation never deleted an unresolved prepare — every deleted
	// prepare's transaction was decided or retracted before its segment died.
	for _, rec := range deleted {
		if rec.Kind == wal.KindPrepare && !decided[rec.GlobalID] && !retracted[rec.TID] {
			t.Fatalf("truncation deleted undecided, unretracted prepare (gid %d, tid %d)", rec.GlobalID, rec.TID)
		}
	}
	// P2: no prepare that recovery will actually replay (above its log's
	// floor) lost its resolving decision to truncation — that would make
	// recovery presume-abort a committed transaction.
	for _, sr := range surviving {
		if sr.rec.Kind == wal.KindPrepare && sr.rec.LSN > sr.floor &&
			decided[sr.rec.GlobalID] && !survivingDecision[sr.rec.GlobalID] && !retracted[sr.rec.TID] {
			t.Fatalf("live prepare (gid %d, lsn %d > floor %d) lost its decision record to truncation",
				sr.rec.GlobalID, sr.rec.LSN, sr.floor)
		}
	}

	// A clean restart must land on exactly the last acknowledged values.
	db2 := MustOpen(def, Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: wal.Storage(mem)},
		Placement:             cfg.Placement,
	})
	t.Cleanup(db2.Close)
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for w := 0; w < workers; w++ {
		last := make(map[string]final)
		for _, f := range results[w] {
			last[fmt.Sprintf("%s/%d", f.reactor, f.k)] = f
		}
		for _, f := range last {
			if v, present := readV(t, db2, f.reactor, f.k); !present || v != f.v {
				t.Fatalf("%s[%d] = (%d, %v) after recovery, want last acknowledged %d",
					f.reactor, f.k, v, present, f.v)
			}
		}
	}
}

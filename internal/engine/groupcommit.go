package engine

import (
	"sync"
	"time"

	"reactdb/internal/occ"
	"reactdb/internal/stats"
	"reactdb/internal/vclock"
	"reactdb/internal/wal"
)

// groupCommitter batches validated (prepared) single-container transactions
// — plus the pre-built prepare/decision records and durability barriers of
// two-phase commits touching this container — and commits them together. The
// motivation is the classic one: the durable
// log write — a real WAL append + fsync under DurabilityWAL, the modeled
// Costs.LogWrite ablation otherwise — is paid once per batch instead of once
// per transaction, so under concurrent load commit cost amortizes across the
// batch. Prepared transactions hold their OCC locks while waiting, so the
// Window also bounds the extra conflict exposure group commit introduces.
type groupCommitter struct {
	container *Container
	window    time.Duration
	maxBatch  int
	logWrite  time.Duration

	// mu guards the accumulating batch and its generation. gen identifies
	// the batch currently accumulating; it bumps every time flush takes a
	// batch, so a window timer armed for an earlier batch can recognize
	// itself as stale and become a no-op instead of flushing a fresh batch
	// before its window elapsed. flushGen is the highest generation a timer
	// or full-batch signal has requested to flush.
	mu       sync.Mutex
	batch    []gcEntry
	gen      uint64
	flushGen uint64
	stopped  bool

	flushCh chan struct{}
	stopCh  chan struct{}
	done    chan struct{}

	batchSize *stats.Histogram
	// records counts pre-built records (2PC prepares and decisions) flushed
	// through this committer — the amortized participant logging the ROADMAP
	// asked for, observable next to the batch-size histogram.
	records uint64
}

// gcEntry is one unit of work accumulated for the next flush: a prepared
// single-container transaction (txn), a pre-built WAL record to append with
// the batch (rec: a 2PC prepare or decision record), or — with both nil — a
// pure durability barrier, acknowledged once everything appended before it is
// durable (read-only 2PC participants use it to force their antecedents).
type gcEntry struct {
	txn  *occ.Txn
	rec  *wal.Record
	done chan error
}

func newGroupCommitter(c *Container) *groupCommitter {
	cfg := &c.db.cfg
	g := &groupCommitter{
		container: c,
		window:    cfg.GroupCommit.Window,
		maxBatch:  cfg.GroupCommit.MaxBatch,
		logWrite:  cfg.Costs.LogWrite,
		flushCh:   make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
		batchSize: stats.NewHistogram(stats.DepthBounds()),
	}
	go g.loop()
	return g
}

// submit hands a prepared transaction to the committer and returns the
// channel on which the commit outcome will be delivered. The caller should
// release its executor core while waiting: the wait is the group-commit
// window, not CPU work. The first entry of a fresh batch arms a one-shot
// window timer, so an idle committer costs nothing.
//
// A false return means the committer has been stopped and did not accept the
// transaction; the caller still owns it (prepared, holding its locks) and
// must abort or commit it itself. Failing fast here closes the shutdown race
// in which an entry appended concurrently with stop, after the loop's final
// drain, would never be flushed and its waiter would block forever.
func (g *groupCommitter) submit(txn *occ.Txn) (<-chan error, bool) {
	return g.enqueue(gcEntry{txn: txn})
}

// submitRecord hands a pre-built WAL record — a two-phase-commit prepare or
// decision record — to the committer: it is appended with the next batch and
// acknowledged once the batch fsync covers it, so 2PC log writes amortize
// with the container's single-container commits. A nil rec is a pure
// durability barrier (nothing is appended; the acknowledgment means
// everything appended before submission is durable). The same stopped
// semantics as submit apply.
func (g *groupCommitter) submitRecord(rec *wal.Record) (<-chan error, bool) {
	return g.enqueue(gcEntry{rec: rec})
}

func (g *groupCommitter) enqueue(e gcEntry) (<-chan error, bool) {
	e.done = make(chan error, 1)
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return nil, false
	}
	g.batch = append(g.batch, e)
	n := len(g.batch)
	gen := g.gen
	g.mu.Unlock()
	if n >= g.maxBatch {
		g.requestFlush(gen)
	} else if n == 1 {
		time.AfterFunc(g.window, func() { g.requestFlush(gen) })
	}
	return e.done, true
}

// requestFlush records that the batch of generation gen is due to flush and
// nudges the loop. A request for a generation that has already been taken by
// a flush is stale — the timer that fired belongs to a batch that is gone —
// and is dropped, protecting the currently accumulating batch's window.
func (g *groupCommitter) requestFlush(gen uint64) {
	g.mu.Lock()
	if g.stopped || gen < g.gen {
		g.mu.Unlock()
		return
	}
	if gen > g.flushGen {
		g.flushGen = gen
	}
	g.mu.Unlock()
	g.signalFlush()
}

// signalFlush nudges the loop; a nudge already pending absorbs the signal
// (the due generation is recorded in flushGen, not in the channel).
func (g *groupCommitter) signalFlush() {
	select {
	case g.flushCh <- struct{}{}:
	default:
	}
}

// loop flushes the accumulated batch whenever it fills up or its window
// timer fires, and drains any remainder on shutdown.
func (g *groupCommitter) loop() {
	defer close(g.done)
	for {
		select {
		case <-g.stopCh:
			for g.pending() > 0 {
				g.flush(true)
			}
			return
		case <-g.flushCh:
			g.flush(false)
		}
	}
}

// flush commits up to maxBatch accumulated transactions: the write phase of
// every prepared transaction runs back to back, then the batch's commit
// records are made durable once — a single WAL append+fsync under
// DurabilityWAL, one modeled log write otherwise — before any waiter learns
// its outcome (a commit is not acknowledged before it is durable). Anything
// beyond maxBatch stays queued: a further full batch flushes immediately, a
// partial remainder gets a fresh window timer. Unless forced (shutdown
// drain), a flush whose batch generation was never requested is a spurious
// wakeup and is skipped.
func (g *groupCommitter) flush(force bool) {
	g.mu.Lock()
	if !force && g.flushGen < g.gen {
		g.mu.Unlock()
		return
	}
	n := len(g.batch)
	if n > g.maxBatch {
		n = g.maxBatch
	}
	batch := g.batch[:n:n]
	g.batch = g.batch[n:]
	remainder := len(g.batch)
	if n > 0 {
		g.gen++
	}
	gen := g.gen
	g.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if remainder >= g.maxBatch {
		g.requestFlush(gen)
	} else if remainder > 0 {
		// The remainder's original window timer belongs to a flushed
		// generation; arm a fresh one for the new batch.
		time.AfterFunc(g.window, func() { g.requestFlush(gen) })
	}
	g.batchSize.Observe(float64(len(batch)))

	txns := make([]*occ.Txn, 0, len(batch))
	txnSlot := make([]int, len(batch)) // entry index -> index into errs, -1 for none
	var recordEntries uint64
	// Append the batch's commit records *before* the write phase makes the
	// writes visible (see walRecordPrepared): one buffer, one write. Pre-built
	// 2PC records ride in the same buffer; their transactions stay prepared —
	// the coordinator owns their write phase. If the append itself fails
	// nothing was installed yet, so the whole batch can abort cleanly.
	w := g.container.wal
	recs := make([]wal.Record, 0, len(batch))
	for i, e := range batch {
		txnSlot[i] = -1
		switch {
		case e.txn != nil:
			txnSlot[i] = len(txns)
			txns = append(txns, e.txn)
			if w != nil {
				// AssignTID fails only for transactions that are not prepared;
				// CommitPreparedBatch reports ErrTxnClosed for those slots.
				if rec, err := walRecordPrepared(e.txn); err == nil && len(rec.Writes) > 0 {
					recs = append(recs, rec)
				}
			}
		case e.rec != nil:
			recordEntries++
			if w != nil {
				recs = append(recs, *e.rec)
			}
		}
	}
	if w != nil && len(recs) > 0 {
		if _, err := w.AppendBatch(recs); err != nil {
			// Abort the batch's own transactions; 2PC record owners learn the
			// failure through their channel and abort their participants
			// themselves (the log has already retracted or wedged the batch's
			// frames, see wal.Log.AppendBatch).
			for _, t := range txns {
				_ = t.AbortPrepared()
			}
			for _, e := range batch {
				e.done <- err
			}
			for i := range batch {
				batch[i] = gcEntry{}
			}
			return
		}
	}
	var errs []error
	if len(txns) > 0 {
		errs = g.container.domain.CommitPreparedBatch(txns)
	}
	var logErr error
	if w != nil {
		// Sync even for an all-read-only or barrier-only batch: antecedent
		// records its members read are already appended, and an
		// already-durable log absorbs the call.
		logErr = w.Sync()
		if logErr == nil {
			// Semi-sync hook: withhold the whole batch's acknowledgments until
			// every attached semi-sync replica has durably mirrored the
			// batch's records. One wait covers the batch — the amortization
			// that makes semi-sync affordable under group commit.
			g.container.waitShipped(w.DurableLSN())
		}
	} else if g.logWrite > 0 {
		vclock.Work(g.logWrite)
	}
	if recordEntries > 0 {
		g.mu.Lock()
		g.records += recordEntries
		g.mu.Unlock()
	}
	for i, e := range batch {
		// Record and barrier entries are acknowledged by the fsync outcome
		// alone; transactions additionally carry their write-phase error. A
		// transaction whose write phase installed in memory but whose fsync
		// failed must not be acknowledged: survivors of a crash at this point
		// are exactly the fsynced prefix of the log.
		err := logErr
		if s := txnSlot[i]; s >= 0 && errs[s] != nil {
			err = errs[s]
		}
		e.done <- err
	}
	// Zero the flushed slots so the shared backing array does not pin the
	// committed transactions' read/write sets until append reallocates.
	for i := range batch {
		batch[i] = gcEntry{}
	}
}

// pending returns the number of transactions awaiting a flush.
func (g *groupCommitter) pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.batch)
}

// stop shuts the committer down after flushing pending work. The stopped
// flag is set under mu before stopCh closes, so every entry a concurrent
// submit managed to append is visible to the loop's final drain, and every
// later submit fails fast. stop is idempotent.
func (g *groupCommitter) stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		<-g.done
		return
	}
	g.stopped = true
	g.mu.Unlock()
	close(g.stopCh)
	<-g.done
}

// GroupCommitStats is a snapshot of one container's group-commit activity.
type GroupCommitStats struct {
	Container int
	// Batches and Txns count flushed batches and the transactions committed
	// through them; Largest is the biggest batch seen.
	Batches uint64
	Txns    uint64
	Largest uint64
	// Records counts pre-built 2PC records (participant prepares and
	// coordinator decisions) flushed through the committer, i.e. two-phase
	// commit log writes that amortized with the container's batches.
	Records uint64
	// BatchSize is the distribution of flushed batch sizes.
	BatchSize stats.HistogramSnapshot
}

// GroupCommitStats returns per-container group-commit statistics. Containers
// without group commit enabled report zeros.
func (db *Database) GroupCommitStats() []GroupCommitStats {
	out := make([]GroupCommitStats, 0, len(db.containers))
	for _, c := range db.containers {
		s := GroupCommitStats{Container: c.id}
		s.Batches, s.Txns, s.Largest = c.domain.GroupCommitStats()
		if c.committer != nil {
			s.BatchSize = c.committer.batchSize.Snapshot()
			c.committer.mu.Lock()
			s.Records = c.committer.records
			c.committer.mu.Unlock()
		}
		out = append(out, s)
	}
	return out
}

package engine

import (
	"sync"
	"time"

	"reactdb/internal/occ"
	"reactdb/internal/stats"
	"reactdb/internal/vclock"
)

// groupCommitter batches validated (prepared) single-container transactions
// and commits them together. The motivation is the classic one: the modeled
// durable log write (Costs.LogWrite) is charged once per batch instead of
// once per transaction, so under concurrent load commit cost amortizes across
// the batch. Prepared transactions hold their OCC locks while waiting, so the
// Window also bounds the extra conflict exposure group commit introduces.
type groupCommitter struct {
	container *Container
	window    time.Duration
	maxBatch  int
	logWrite  time.Duration

	mu    sync.Mutex
	batch []gcEntry

	flushCh chan struct{}
	stopCh  chan struct{}
	done    chan struct{}

	batchSize *stats.Histogram
}

type gcEntry struct {
	txn  *occ.Txn
	done chan error
}

func newGroupCommitter(c *Container) *groupCommitter {
	cfg := &c.db.cfg
	g := &groupCommitter{
		container: c,
		window:    cfg.GroupCommit.Window,
		maxBatch:  cfg.GroupCommit.MaxBatch,
		logWrite:  cfg.Costs.LogWrite,
		flushCh:   make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
		batchSize: stats.NewHistogram(stats.DepthBounds()),
	}
	go g.loop()
	return g
}

// submit hands a prepared transaction to the committer and returns the
// channel on which the commit outcome will be delivered. The caller should
// release its executor core while waiting: the wait is the group-commit
// window, not CPU work. The first entry of a fresh batch arms a one-shot
// window timer, so an idle committer costs nothing.
func (g *groupCommitter) submit(txn *occ.Txn) <-chan error {
	done := make(chan error, 1)
	g.mu.Lock()
	g.batch = append(g.batch, gcEntry{txn: txn, done: done})
	n := len(g.batch)
	g.mu.Unlock()
	if n >= g.maxBatch {
		g.signalFlush()
	} else if n == 1 {
		time.AfterFunc(g.window, g.signalFlush)
	}
	return done
}

// signalFlush nudges the loop; a flush already pending absorbs the signal,
// and a spurious flush of an empty batch is a no-op.
func (g *groupCommitter) signalFlush() {
	select {
	case g.flushCh <- struct{}{}:
	default:
	}
}

// loop flushes the accumulated batch whenever it fills up or its window
// timer fires, and drains any remainder on shutdown.
func (g *groupCommitter) loop() {
	defer close(g.done)
	for {
		select {
		case <-g.stopCh:
			for g.pending() > 0 {
				g.flush()
			}
			return
		case <-g.flushCh:
			g.flush()
		}
	}
}

// flush commits up to maxBatch accumulated transactions: the write phase of
// every prepared transaction runs back to back, then the modeled log write is
// charged once for the whole batch before any waiter learns its outcome (a
// commit is not acknowledged before it is durable). Anything beyond maxBatch
// stays queued: a further full batch flushes immediately, a partial remainder
// gets a fresh window timer.
func (g *groupCommitter) flush() {
	g.mu.Lock()
	n := len(g.batch)
	if n > g.maxBatch {
		n = g.maxBatch
	}
	batch := g.batch[:n:n]
	g.batch = g.batch[n:]
	remainder := len(g.batch)
	g.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if remainder >= g.maxBatch {
		g.signalFlush()
	} else if remainder > 0 {
		time.AfterFunc(g.window, g.signalFlush)
	}
	g.batchSize.Observe(float64(len(batch)))

	txns := make([]*occ.Txn, len(batch))
	for i, e := range batch {
		txns[i] = e.txn
	}
	errs := g.container.domain.CommitPreparedBatch(txns)
	if g.logWrite > 0 {
		vclock.Work(g.logWrite)
	}
	for i, e := range batch {
		e.done <- errs[i]
	}
	// Zero the flushed slots so the shared backing array does not pin the
	// committed transactions' read/write sets until append reallocates.
	for i := range batch {
		batch[i] = gcEntry{}
	}
}

// pending returns the number of transactions awaiting a flush.
func (g *groupCommitter) pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.batch)
}

// stop shuts the committer down after flushing pending work.
func (g *groupCommitter) stop() {
	close(g.stopCh)
	<-g.done
}

// GroupCommitStats is a snapshot of one container's group-commit activity.
type GroupCommitStats struct {
	Container int
	// Batches and Txns count flushed batches and the transactions committed
	// through them; Largest is the biggest batch seen.
	Batches uint64
	Txns    uint64
	Largest uint64
	// BatchSize is the distribution of flushed batch sizes.
	BatchSize stats.HistogramSnapshot
}

// GroupCommitStats returns per-container group-commit statistics. Containers
// without group commit enabled report zeros.
func (db *Database) GroupCommitStats() []GroupCommitStats {
	out := make([]GroupCommitStats, 0, len(db.containers))
	for _, c := range db.containers {
		s := GroupCommitStats{Container: c.id}
		s.Batches, s.Txns, s.Largest = c.domain.GroupCommitStats()
		if c.committer != nil {
			s.BatchSize = c.committer.batchSize.Snapshot()
		}
		out = append(out, s)
	}
	return out
}

package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/randutil"
	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// This file extends the black-box history checker to replica reads: while a
// concurrent multi-container banking workload runs on the primary, auditors
// take serializable snapshots on a tailing replica. The replica is treated as
// a black box — the checker only sees operation outcomes — and verifies the
// paper-level contract of snapshot-consistent read scale-out:
//
//   - every committed replica audit observes the conserved total (a torn 2PC
//     group — debit shipped, credit not — or a mid-apply read would break it);
//   - after the writers quiesce and the replica catches up, its per-account
//     state equals the primary's exactly and is reproducible from the
//     acknowledged operation history (the replica converged on the real
//     committed prefix, not merely on something internally consistent).
//
// It runs under the CI -race job together with the rest of internal/engine.

func TestBlackBoxReplicaHistorySerializableBanking(t *testing.T) {
	const (
		accounts   = 8
		initial    = int64(1000)
		workers    = 4
		opsPer     = 50
		containers = 2
	)
	names := make([]string, accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct-%d", i)
	}
	def := core.NewDatabaseDef().MustAddType(bankAccountType())
	def.MustDeclareReactors("Account", names...)

	storage := wal.NewMemStorage()
	cfg := Config{
		Containers:            containers,
		ExecutorsPerContainer: 2,
		GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 8, Window: 200 * time.Microsecond},
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: storage},
		Placement: func(reactor string) int {
			var id int
			fmt.Sscanf(reactor, "acct-%d", &id)
			return id % containers
		},
	}
	db := MustOpen(def, cfg)
	t.Cleanup(db.Close)
	for i := 0; i < accounts; i++ {
		db.MustLoad(names[i], "bal", rel.Row{int64(0), initial})
	}
	// Loaded rows are not logged: checkpoint so the replica bootstrap
	// installs them from the blob (the checkpoint-transfer path).
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	rep, err := OpenReplica(db, ReplicaOptions{})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	t.Cleanup(rep.Close)

	histories := make([][]histOp, workers)
	var transfersDone atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randutil.New(int64(w) + 101)
			for i := 0; i < opsPer; i++ {
				src := randutil.UniformInt(rng, 0, accounts-1)
				dst := randutil.UniformInt(rng, 0, accounts-2)
				if dst >= src {
					dst++
				}
				amt := int64(randutil.UniformInt(rng, 1, 10))
				_, err := db.Execute(names[src], "xfer", names[dst], amt)
				if err != nil && !errors.Is(err, ErrConflict) {
					t.Errorf("xfer %d->%d: %v", src, dst, err)
					return
				}
				histories[w] = append(histories[w], histOp{src: src, dst: dst, amt: amt, acked: err == nil})
			}
		}(w)
	}

	// The replica auditor: serializable multi-container snapshots taken on
	// the replica while apply rounds race underneath. OCC validation against
	// the apply rounds means a committed audit can only have observed a round
	// boundary; conflicting attempts retry like any OCC transaction.
	var replicaAudits []int64
	auditorDone := make(chan struct{})
	go func() {
		defer close(auditorDone)
		for !transfersDone.Load() {
			res, err := rep.Execute(names[0], "audit", names)
			if err != nil {
				if errors.Is(err, ErrConflict) {
					continue
				}
				t.Errorf("replica audit: %v", err)
				return
			}
			replicaAudits = append(replicaAudits, res.(int64))
		}
	}()
	wg.Wait()
	transfersDone.Store(true)
	<-auditorDone
	if t.Failed() {
		return
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	// A quiescent, caught-up audit always commits and joins the history.
	res, err := rep.Execute(names[0], "audit", names)
	if err != nil {
		t.Fatalf("quiescent replica audit: %v", err)
	}
	replicaAudits = append(replicaAudits, res.(int64))

	// Check 1: every committed replica audit observed the conserved total.
	want := initial * accounts
	for i, total := range replicaAudits {
		if total != want {
			t.Fatalf("replica audit %d observed total %d, want %d (torn or mid-apply snapshot)", i, total, want)
		}
	}

	// Check 2: the caught-up replica state IS the acknowledged history's
	// outcome, account by account, and matches the primary exactly.
	expected := make([]int64, accounts)
	for i := range expected {
		expected[i] = initial
	}
	acked := 0
	for _, h := range histories {
		for _, op := range h {
			if op.acked {
				expected[op.src] -= op.amt
				expected[op.dst] += op.amt
				acked++
			}
		}
	}
	if acked == 0 {
		t.Fatal("no transfer was acknowledged; the workload exercised nothing")
	}
	var sum int64
	for i := 0; i < accounts; i++ {
		prow, err := db.ReadRow(names[i], "bal", int64(0))
		if err != nil || prow == nil {
			t.Fatalf("primary ReadRow(%s): %v", names[i], err)
		}
		rrow, err := rep.ReadRow(names[i], "bal", int64(0))
		if err != nil || rrow == nil {
			t.Fatalf("replica ReadRow(%s): %v", names[i], err)
		}
		pv, rv := prow.Int64(1), rrow.Int64(1)
		if rv != pv {
			t.Fatalf("account %d: replica %d != primary %d after catch-up", i, rv, pv)
		}
		if rv != expected[i] {
			t.Fatalf("account %d: replica balance %d, want %d from the acknowledged history", i, rv, expected[i])
		}
		sum += rv
	}
	if sum != want {
		t.Fatalf("replica final total %d, want %d", sum, want)
	}
}

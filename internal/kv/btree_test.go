package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("k%08d", i)) }

func TestBTreeEmptyTree(t *testing.T) {
	bt := NewBTree()
	if bt.Len() != 0 {
		t.Fatalf("Len = %d, want 0", bt.Len())
	}
	if bt.Get([]byte("missing")) != nil {
		t.Fatalf("Get on empty tree should return nil")
	}
	count := 0
	bt.Ascend(func([]byte, *Record) bool { count++; return true })
	if count != 0 {
		t.Fatalf("Ascend on empty tree visited %d entries", count)
	}
	if bt.Delete([]byte("missing")) != nil {
		t.Fatalf("Delete of missing key should return nil")
	}
}

func TestBTreeInsertGet(t *testing.T) {
	bt := NewBTree()
	const n = 2000
	recs := make(map[string]*Record, n)
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		k := key(i)
		r := NewCommittedRecord(k, uint64(i))
		recs[string(k)] = r
		if prev := bt.Insert(k, r); prev != nil {
			t.Fatalf("unexpected previous record for %s", k)
		}
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d, want %d", bt.Len(), n)
	}
	for k, want := range recs {
		if got := bt.Get([]byte(k)); got != want {
			t.Fatalf("Get(%s) returned wrong record", k)
		}
	}
	if bt.Get([]byte("absent-key")) != nil {
		t.Fatalf("Get of missing key should return nil")
	}
}

func TestBTreeInsertCopiesKey(t *testing.T) {
	// The caller may reuse its key buffer after Insert/GetOrInsert: the tree
	// must own its key bytes.
	bt := NewBTree()
	buf := []byte("key-one")
	r1 := NewCommittedRecord(nil, 1)
	bt.Insert(buf, r1)
	copy(buf, "key-two")
	r2 := NewCommittedRecord(nil, 2)
	bt.GetOrInsert(buf, r2)
	if bt.Len() != 2 {
		t.Fatalf("Len = %d, want 2 distinct keys after buffer reuse", bt.Len())
	}
	if bt.Get([]byte("key-one")) != r1 || bt.Get([]byte("key-two")) != r2 {
		t.Fatalf("buffer reuse corrupted stored keys")
	}
}

func TestBTreeInsertReplace(t *testing.T) {
	bt := NewBTree()
	r1 := NewCommittedRecord([]byte("v1"), 1)
	r2 := NewCommittedRecord([]byte("v2"), 2)
	bt.Insert([]byte("k"), r1)
	epoch := bt.Epoch()
	if prev := bt.Insert([]byte("k"), r2); prev != r1 {
		t.Fatalf("Insert should return the replaced record")
	}
	if bt.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", bt.Len())
	}
	if bt.Get([]byte("k")) != r2 {
		t.Fatalf("Get should return the replacement record")
	}
	if bt.Epoch() != epoch {
		t.Fatalf("value replacement must not bump the structural epoch")
	}
}

func TestBTreeEpoch(t *testing.T) {
	bt := NewBTree()
	e0 := bt.Epoch()
	bt.Insert([]byte("a"), NewRecord())
	e1 := bt.Epoch()
	if e1 == e0 {
		t.Fatalf("insert must bump the epoch")
	}
	bt.Delete([]byte("a"))
	if bt.Epoch() == e1 {
		t.Fatalf("physical delete must bump the epoch")
	}
	if bt.Delete([]byte("a")) != nil {
		t.Fatalf("second delete should find nothing")
	}
	e2 := bt.Epoch()
	bt.Delete([]byte("a"))
	if bt.Epoch() != e2 {
		t.Fatalf("no-op delete must not bump the epoch")
	}
}

func TestBTreeGetOrInsert(t *testing.T) {
	bt := NewBTree()
	r1 := NewRecord()
	got, inserted := bt.GetOrInsert([]byte("a"), r1)
	if !inserted || got != r1 {
		t.Fatalf("first GetOrInsert should insert")
	}
	r2 := NewRecord()
	got, inserted = bt.GetOrInsert([]byte("a"), r2)
	if inserted || got != r1 {
		t.Fatalf("second GetOrInsert should return the existing record")
	}
	if bt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", bt.Len())
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 500; i++ {
		bt.Insert(key(i), NewCommittedRecord(nil, uint64(i)))
	}
	var visited []string
	bt.AscendRange(key(100), key(200), func(k []byte, _ *Record) bool {
		visited = append(visited, string(k))
		return true
	})
	if len(visited) != 100 {
		t.Fatalf("visited %d keys, want 100", len(visited))
	}
	if visited[0] != string(key(100)) || visited[99] != string(key(199)) {
		t.Fatalf("range bounds wrong: first=%s last=%s", visited[0], visited[99])
	}
	if !sort.StringsAreSorted(visited) {
		t.Fatalf("ascending scan out of order")
	}

	// Early termination.
	count := 0
	bt.AscendRange(key(0), nil, func([]byte, *Record) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early termination visited %d, want 10", count)
	}
}

func TestBTreeAscendPrefix(t *testing.T) {
	bt := NewBTree()
	for _, k := range []string{"a", "ab", "ab\x00", "ab\xff", "abc", "ac", "b"} {
		bt.Insert([]byte(k), NewCommittedRecord(nil, 0))
	}
	var visited []string
	bt.AscendPrefix([]byte("ab"), func(k []byte, _ *Record) bool {
		visited = append(visited, string(k))
		return true
	})
	want := []string{"ab", "ab\x00", "abc", "ab\xff"}
	sort.Strings(want)
	if len(visited) != len(want) {
		t.Fatalf("prefix scan visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("prefix scan visited %v, want %v", visited, want)
		}
	}
	// Empty prefix scans everything.
	count := 0
	bt.AscendPrefix(nil, func([]byte, *Record) bool { count++; return true })
	if count != bt.Len() {
		t.Fatalf("empty prefix visited %d, want %d", count, bt.Len())
	}
}

func TestBTreeDescendRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 500; i++ {
		bt.Insert(key(i), NewCommittedRecord(nil, uint64(i)))
	}
	var visited []string
	bt.DescendRange(key(100), key(200), func(k []byte, _ *Record) bool {
		visited = append(visited, string(k))
		return true
	})
	if len(visited) != 100 {
		t.Fatalf("visited %d keys, want 100", len(visited))
	}
	if visited[0] != string(key(199)) || visited[99] != string(key(100)) {
		t.Fatalf("descending bounds wrong: first=%s last=%s", visited[0], visited[99])
	}
	if !sort.SliceIsSorted(visited, func(i, j int) bool { return visited[i] > visited[j] }) {
		t.Fatalf("descending scan out of order")
	}

	// Unbounded high end scans from the largest key.
	visited = visited[:0]
	bt.DescendRange(nil, nil, func(k []byte, _ *Record) bool {
		visited = append(visited, string(k))
		return len(visited) < 3
	})
	if len(visited) != 3 || visited[0] != string(key(499)) {
		t.Fatalf("unbounded descend wrong: %v", visited)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree()
	const n = 1000
	for i := 0; i < n; i++ {
		bt.Insert(key(i), NewCommittedRecord(nil, uint64(i)))
	}
	for i := 0; i < n; i += 2 {
		if rec := bt.Delete(key(i)); rec == nil {
			t.Fatalf("Delete(%s) returned nil", key(i))
		}
	}
	if bt.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", bt.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		got := bt.Get(key(i))
		if i%2 == 0 && got != nil {
			t.Fatalf("deleted key %s still present", key(i))
		}
		if i%2 == 1 && got == nil {
			t.Fatalf("kept key %s missing", key(i))
		}
	}
	count := 0
	bt.Ascend(func([]byte, *Record) bool { count++; return true })
	if count != n/2 {
		t.Fatalf("Ascend visited %d, want %d", count, n/2)
	}
}

func TestBTreeScanMatchesSortedInsertOrderProperty(t *testing.T) {
	// Property: for any set of distinct keys, an ascending full scan visits
	// exactly the sorted key set.
	f := func(raw []uint32) bool {
		bt := NewBTree()
		seen := make(map[string]bool)
		var keys []string
		for _, r := range raw {
			k := fmt.Sprintf("p%010d", r%100000)
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
			bt.Insert([]byte(k), NewCommittedRecord(nil, 0))
		}
		sort.Strings(keys)
		var scanned []string
		bt.Ascend(func(k []byte, _ *Record) bool {
			scanned = append(scanned, string(k))
			return true
		})
		if len(scanned) != len(keys) {
			return false
		}
		for i := range keys {
			if keys[i] != scanned[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeConcurrentReadersAndWriters(t *testing.T) {
	bt := NewBTree()
	const n = 2000
	for i := 0; i < n; i++ {
		bt.Insert(key(i), NewCommittedRecord([]byte("x"), 0))
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers insert new keys beyond the preloaded range.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				bt.Insert([]byte(fmt.Sprintf("w%d-%06d", w, i)), NewCommittedRecord(nil, 0))
			}
		}(w)
	}
	// Readers continuously scan the preloaded range and check monotonicity.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev []byte
				count := 0
				bt.AscendRange(key(0), key(n), func(k []byte, _ *Record) bool {
					if prev != nil && bytes.Compare(k, prev) <= 0 {
						t.Errorf("scan out of order: %s after %s", k, prev)
						return false
					}
					prev = k
					count++
					return true
				})
				if count < n {
					t.Errorf("scan of stable range visited %d < %d keys", count, n)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := bt.Len(); got != n+4*500 {
		t.Fatalf("Len = %d, want %d", got, n+4*500)
	}
}

// Package kv provides the low-level storage substrate used by ReactDB-Go:
// versioned, latchable in-memory records and an ordered in-memory B+tree index
// mapping order-preserving encoded keys to records.
//
// The package plays the role Masstree plays in Silo: it supplies point and
// range access to records whose headers carry a transaction-id (TID) word used
// by the optimistic concurrency control protocol in package occ. The tree
// itself is protected by a readers-writer latch; record contents are protected
// by the per-record TID word (lock bit + version), so readers of record data
// never take the tree latch in write mode.
package kv

package kv

import "bytes"

// ScanEntry is one row of a batch scan: the tree-owned (immutable) key and the
// record indexed under it.
type ScanEntry struct {
	Key []byte
	Rec *Record
}

// Cursor is a reusable, allocation-free iterator over a key range [lo, hi) of
// a BTree. A zero Cursor is ready for Reset; the same Cursor value can be
// Reset onto different trees and ranges indefinitely, so callers keep one per
// executor (or per operator) instead of allocating per scan.
//
// The cursor caches its leaf position between calls and revalidates it against
// the tree's structural epoch: if the tree changed shape since the last call
// (a key was inserted or physically deleted anywhere), the cursor re-seeks
// past the last key it returned. This makes Next/ScanBatch safe to interleave
// with arbitrary concurrent inserts and deletes — the cursor never misses a
// pre-existing key that is still in the tree and never returns a key twice,
// though (as with any latch-crabbing iterator) keys inserted concurrently next
// to the cursor position may or may not be observed.
//
// Because the tree never mutates key bytes after insert, the resume position
// is simply the last returned key slice — no copy is taken.
//
// The lo and hi bounds are retained by reference and must not be mutated by
// the caller until the cursor is Reset again or abandoned.
type Cursor struct {
	tree  *BTree
	lo    []byte
	hi    []byte
	leaf  *node
	idx   int
	epoch uint64
	// resume is the last key returned; nil until the first row is produced.
	resume []byte
	state  uint8
}

const (
	cursorInit uint8 = iota
	cursorActive
	cursorDone
)

// Reset re-targets the cursor at tree for the range [lo, hi). Nil/empty lo
// means "from the start"; nil/empty hi means "no upper bound".
func (c *Cursor) Reset(tree *BTree, lo, hi []byte) {
	c.tree = tree
	c.lo = lo
	c.hi = hi
	c.leaf = nil
	c.idx = 0
	c.epoch = 0
	c.resume = nil
	c.state = cursorInit
}

// NewCursor returns a cursor positioned at the start of [lo, hi).
func (t *BTree) NewCursor(lo, hi []byte) *Cursor {
	c := &Cursor{}
	c.Reset(t, lo, hi)
	return c
}

// seekLocked positions the cursor at the first key >= key (exclusive=false) or
// > key (exclusive=true). Caller holds the tree latch.
func (c *Cursor) seekLocked(key []byte, exclusive bool) {
	kpfx := keyPrefix(key)
	c.leaf = c.tree.leafFor(key, kpfx)
	if exclusive {
		c.idx = c.leaf.upperBound(key, kpfx)
	} else {
		c.idx = c.leaf.lowerBound(key, kpfx)
	}
}

// ensureLocked validates the cached position against the tree epoch,
// (re-)seeking if the cursor is fresh or the tree changed shape. Caller holds
// the tree latch.
func (c *Cursor) ensureLocked() {
	switch {
	case c.state == cursorDone:
		return
	case c.state == cursorInit:
		c.seekLocked(c.lo, false)
		c.epoch = c.tree.epoch
		c.state = cursorActive
	case c.epoch != c.tree.epoch:
		if c.resume != nil {
			c.seekLocked(c.resume, true)
		} else {
			c.seekLocked(c.lo, false)
		}
		c.epoch = c.tree.epoch
	}
}

// Next returns the next key/record in the range, or ok=false when the range is
// exhausted. The returned key is tree-owned and immutable; it remains valid
// after the call.
func (c *Cursor) Next() (key []byte, rec *Record, ok bool) {
	t := c.tree
	t.mu.RLock()
	c.ensureLocked()
	for c.leaf != nil {
		if c.idx >= len(c.leaf.keys) {
			c.leaf = c.leaf.next
			c.idx = 0
			continue
		}
		k := c.leaf.keys[c.idx]
		if len(c.hi) > 0 && bytes.Compare(k, c.hi) >= 0 {
			break
		}
		rec = c.leaf.values[c.idx]
		c.idx++
		c.resume = k
		t.mu.RUnlock()
		return k, rec, true
	}
	c.state = cursorDone
	c.leaf = nil
	t.mu.RUnlock()
	return nil, nil, false
}

// ScanBatch fills buf with the next rows of the range and returns how many
// were produced. A return of 0 means the range is exhausted (when buf is
// non-empty). The tree latch is acquired once per batch rather than once per
// row, which is what makes batched scans cheaper than repeated Next calls.
func (c *Cursor) ScanBatch(buf []ScanEntry) int {
	if len(buf) == 0 || c.state == cursorDone {
		return 0
	}
	t := c.tree
	t.mu.RLock()
	c.ensureLocked()
	n := 0
	for c.leaf != nil && n < len(buf) {
		if c.idx >= len(c.leaf.keys) {
			c.leaf = c.leaf.next
			c.idx = 0
			continue
		}
		k := c.leaf.keys[c.idx]
		if len(c.hi) > 0 && bytes.Compare(k, c.hi) >= 0 {
			c.leaf = nil
			break
		}
		buf[n] = ScanEntry{Key: k, Rec: c.leaf.values[c.idx]}
		n++
		c.idx++
	}
	if n > 0 {
		c.resume = buf[n-1].Key
	}
	if c.leaf == nil {
		c.state = cursorDone
	}
	t.mu.RUnlock()
	return n
}

package kv

import (
	"runtime"
	"sync/atomic"
)

// TID word layout, following Silo's design: the low 62 bits carry the version
// (epoch number in the high bits of the version, sequence number in the low
// bits — the split is managed by package occ), bit 62 marks a logically absent
// (deleted or not-yet-committed) record, and bit 63 is the record latch.
const (
	lockBit   uint64 = 1 << 63
	absentBit uint64 = 1 << 62

	// TIDMask extracts the version portion of a TID word.
	TIDMask uint64 = absentBit - 1
)

// Record is a single versioned record. The data payload is an immutable byte
// slice swapped atomically on every committed write; the word field carries
// the Silo TID word. The zero value is an absent, unlocked record with version
// zero, which is the state freshly inserted (uncommitted) records start in.
type Record struct {
	word atomic.Uint64
	data atomic.Pointer[[]byte]
}

// NewRecord returns a record that starts absent (invisible to readers) with
// version zero. Committing an insert makes it visible via Write followed by
// Unlock with absent=false.
func NewRecord() *Record {
	r := &Record{}
	r.word.Store(absentBit)
	return r
}

// NewCommittedRecord returns a visible record holding data at version tid.
// It is used by loaders that populate tables outside of any transaction.
func NewCommittedRecord(data []byte, tid uint64) *Record {
	r := &Record{}
	d := data
	r.data.Store(&d)
	r.word.Store(tid & TIDMask)
	return r
}

// TIDWord returns the raw TID word (including lock and absent bits).
func (r *Record) TIDWord() uint64 { return r.word.Load() }

// TID returns the version portion of the TID word.
func (r *Record) TID() uint64 { return r.word.Load() & TIDMask }

// Locked reports whether the record latch is currently held.
func (r *Record) Locked() bool { return r.word.Load()&lockBit != 0 }

// Absent reports whether the record is logically absent (deleted or an
// uncommitted insert).
func (r *Record) Absent() bool { return r.word.Load()&absentBit != 0 }

// TryLock attempts to acquire the record latch without blocking. It returns
// true on success.
func (r *Record) TryLock() bool {
	for {
		w := r.word.Load()
		if w&lockBit != 0 {
			return false
		}
		if r.word.CompareAndSwap(w, w|lockBit) {
			return true
		}
	}
}

// Lock acquires the record latch, spinning until it is available. Records are
// only held locked for the short write phase of the commit protocol, so a spin
// lock matches Silo's design; the spin yields to the scheduler so lock holders
// can make progress on machines with few cores.
func (r *Record) Lock() {
	for !r.TryLock() {
		runtime.Gosched()
	}
}

// Unlock releases the record latch without changing version or visibility.
func (r *Record) Unlock() {
	for {
		w := r.word.Load()
		if r.word.CompareAndSwap(w, w&^lockBit) {
			return
		}
	}
}

// UnlockWithTID releases the record latch, installs the new version and sets
// the visibility of the record. It must only be called while holding the
// latch; the data payload, if it changed, must have been installed with
// SetData before this call so that readers never observe new data with an old
// version or vice versa.
func (r *Record) UnlockWithTID(tid uint64, absent bool) {
	w := tid & TIDMask
	if absent {
		w |= absentBit
	}
	r.word.Store(w)
}

// SetData installs a new payload. It must be called while holding the latch.
func (r *Record) SetData(data []byte) {
	d := data
	r.data.Store(&d)
}

// Data returns the current payload without any consistency guarantee. Use
// StableRead for transactional reads.
func (r *Record) Data() []byte {
	p := r.data.Load()
	if p == nil {
		return nil
	}
	return *p
}

// StableRead performs Silo's atomic read protocol: it loops until it observes
// a consistent (version, payload) pair while the record is unlocked. It
// returns the payload, the observed version, and whether the record was
// present. The returned payload must be treated as immutable.
func (r *Record) StableRead() (data []byte, tid uint64, present bool) {
	for {
		w1 := r.word.Load()
		if w1&lockBit != 0 {
			// The record is in the write phase of another transaction (or held
			// across a 2PC prepare window); yield so the holder can finish.
			runtime.Gosched()
			continue
		}
		p := r.data.Load()
		w2 := r.word.Load()
		if w1 != w2 {
			continue
		}
		if w1&absentBit != 0 {
			return nil, w1 & TIDMask, false
		}
		if p == nil {
			return nil, w1 & TIDMask, true
		}
		return *p, w1 & TIDMask, true
	}
}

// ValidateVersion reports whether the record still carries the version
// observed at read time and is not locked by another transaction. The
// lockedByMe flag must be true when the validating transaction itself holds
// the record latch (because the record is also in its write set).
func (r *Record) ValidateVersion(observed uint64, lockedByMe bool) bool {
	w := r.word.Load()
	if !lockedByMe && w&lockBit != 0 {
		return false
	}
	return w&TIDMask == observed
}

package kv

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestKeyPrefixOrderAgreement pins the normalized-key shortcut the node
// search relies on: for any two keys, ordering by (keyPrefix, then
// comparePastPrefix on ties) must agree exactly with bytes.Compare. Keys are
// biased toward shared prefixes, NUL bytes, and lengths straddling the 8-byte
// prefix width, which is where the zero-padding logic could go wrong.
func TestKeyPrefixOrderAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randKey := func() []byte {
		n := rng.Intn(12)
		k := make([]byte, n)
		for i := range k {
			switch rng.Intn(4) {
			case 0:
				k[i] = 0x00
			case 1:
				k[i] = 0xFF
			default:
				k[i] = byte(rng.Intn(3)) // tiny alphabet forces long shared prefixes
			}
		}
		return k
	}
	sign := func(v int) int {
		switch {
		case v < 0:
			return -1
		case v > 0:
			return 1
		}
		return 0
	}
	for trial := 0; trial < 20000; trial++ {
		a, b := randKey(), randKey()
		if rng.Intn(4) == 0 {
			// Force the tie path: b extends a (possibly by NUL bytes).
			b = append(append([]byte(nil), a...), randKey()...)
		}
		pa, pb := keyPrefix(a), keyPrefix(b)
		var got int
		switch {
		case pa < pb:
			got = -1
		case pa > pb:
			got = 1
		default:
			got = sign(comparePastPrefix(a, b))
		}
		if want := bytes.Compare(a, b); got != want {
			t.Fatalf("prefix compare %d != bytes.Compare %d for %x vs %x", got, want, a, b)
		}
	}
}

// TestNodePrefixParallelInvariant checks that pfx stays strictly parallel to
// keys through inserts, splits and deletes.
func TestNodePrefixParallelInvariant(t *testing.T) {
	tree := NewBTree()
	rng := rand.New(rand.NewSource(11))
	var keys [][]byte
	for i := 0; i < 5000; i++ {
		k := make([]byte, 1+rng.Intn(10))
		rng.Read(k)
		tree.Insert(k, NewRecord())
		keys = append(keys, k)
	}
	for i := 0; i < 2000; i++ {
		tree.Delete(keys[rng.Intn(len(keys))])
	}
	var walk func(n *node)
	walk = func(n *node) {
		if len(n.pfx) != len(n.keys) {
			t.Fatalf("node has %d keys but %d cached prefixes", len(n.keys), len(n.pfx))
		}
		for i, k := range n.keys {
			if n.pfx[i] != keyPrefix(k) {
				t.Fatalf("stale cached prefix %x for key %x (want %x)", n.pfx[i], k, keyPrefix(k))
			}
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(tree.root)
}

package kv

import (
	"bytes"
	"fmt"
	"testing"
)

func cursorTree(n int) *BTree {
	bt := NewBTree()
	for i := 0; i < n; i++ {
		bt.Insert(key(i), NewCommittedRecord(key(i), uint64(i)))
	}
	return bt
}

func TestCursorNextRange(t *testing.T) {
	bt := cursorTree(500)
	var c Cursor
	c.Reset(bt, key(100), key(200))
	var visited []string
	for {
		k, rec, ok := c.Next()
		if !ok {
			break
		}
		if rec == nil {
			t.Fatalf("nil record for %s", k)
		}
		visited = append(visited, string(k))
	}
	if len(visited) != 100 || visited[0] != string(key(100)) || visited[99] != string(key(199)) {
		t.Fatalf("cursor range wrong: %d keys, first=%q last=%q",
			len(visited), visited[0], visited[len(visited)-1])
	}
	// Exhausted cursors stay exhausted.
	if _, _, ok := c.Next(); ok {
		t.Fatalf("exhausted cursor returned a row")
	}
	// Reset makes the same cursor reusable on a different range.
	c.Reset(bt, nil, key(3))
	count := 0
	for {
		if _, _, ok := c.Next(); !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Fatalf("reused cursor visited %d, want 3", count)
	}
}

func TestCursorSurvivesConcurrentInsert(t *testing.T) {
	bt := cursorTree(100)
	var c Cursor
	c.Reset(bt, nil, nil)
	var visited []string
	for i := 0; ; i++ {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		visited = append(visited, string(k))
		// Structural churn between every Next call: new keys far past the
		// cursor (forces splits and epoch bumps).
		bt.Insert([]byte(fmt.Sprintf("zz-%04d", i)), NewCommittedRecord(nil, 0))
	}
	// Every pre-existing key must be visited exactly once, in order.
	for i := 0; i < 100; i++ {
		if visited[i] != string(key(i)) {
			t.Fatalf("position %d: got %q, want %q", i, visited[i], key(i))
		}
	}
	for i := 1; i < len(visited); i++ {
		if visited[i] <= visited[i-1] {
			t.Fatalf("cursor went backwards: %q after %q", visited[i], visited[i-1])
		}
	}
}

func TestCursorSurvivesConcurrentDelete(t *testing.T) {
	bt := cursorTree(200)
	var c Cursor
	c.Reset(bt, nil, nil)
	var visited []string
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		visited = append(visited, string(k))
		// Delete a key well ahead of the cursor every step.
		n := len(visited)
		if ahead := n*2 + 50; ahead < 200 {
			bt.Delete(key(ahead))
		}
	}
	// No duplicates, ascending order, and every key the cursor saw must have
	// existed at some point (trivially true); keys deleted before the cursor
	// reached them must be absent.
	seen := map[string]bool{}
	for i, k := range visited {
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
		if i > 0 && k <= visited[i-1] {
			t.Fatalf("out of order: %q after %q", k, visited[i-1])
		}
	}
}

func TestCursorScanBatch(t *testing.T) {
	bt := cursorTree(500)
	var c Cursor
	c.Reset(bt, key(10), key(460))
	buf := make([]ScanEntry, 64)
	var visited []string
	for {
		n := c.ScanBatch(buf)
		if n == 0 {
			break
		}
		for _, e := range buf[:n] {
			visited = append(visited, string(e.Key))
			if e.Rec == nil {
				t.Fatalf("nil record for %s", e.Key)
			}
		}
	}
	if len(visited) != 450 {
		t.Fatalf("batch scan visited %d, want 450", len(visited))
	}
	if visited[0] != string(key(10)) || visited[len(visited)-1] != string(key(459)) {
		t.Fatalf("batch bounds wrong: first=%q last=%q", visited[0], visited[len(visited)-1])
	}
	if n := c.ScanBatch(buf); n != 0 {
		t.Fatalf("exhausted batch cursor returned %d rows", n)
	}
}

func TestCursorBatchMatchesNext(t *testing.T) {
	bt := cursorTree(333)
	var a, b Cursor
	a.Reset(bt, key(7), key(300))
	b.Reset(bt, key(7), key(300))
	buf := make([]ScanEntry, 17) // odd size to exercise batch boundaries
	var fromBatch [][]byte
	for {
		n := a.ScanBatch(buf)
		if n == 0 {
			break
		}
		for _, e := range buf[:n] {
			fromBatch = append(fromBatch, e.Key)
		}
	}
	i := 0
	for {
		k, _, ok := b.Next()
		if !ok {
			break
		}
		if i >= len(fromBatch) || !bytes.Equal(fromBatch[i], k) {
			t.Fatalf("batch/next divergence at %d", i)
		}
		i++
	}
	if i != len(fromBatch) {
		t.Fatalf("batch returned %d rows, next returned %d", len(fromBatch), i)
	}
}

// TestCursorZeroAlloc pins the allocation-free contract of the reusable
// cursor: once Reset, steady-state Next and ScanBatch calls must not allocate.
func TestCursorZeroAlloc(t *testing.T) {
	bt := cursorTree(2048)
	var c Cursor
	buf := make([]ScanEntry, 128)

	allocs := testing.AllocsPerRun(50, func() {
		c.Reset(bt, nil, nil)
		for {
			if _, _, ok := c.Next(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("cursor Next loop allocated %.1f allocs/op, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(50, func() {
		c.Reset(bt, nil, nil)
		for c.ScanBatch(buf) > 0 {
		}
	})
	if allocs != 0 {
		t.Fatalf("cursor ScanBatch loop allocated %.1f allocs/op, want 0", allocs)
	}

	// Point lookups are allocation-free too.
	k := key(512)
	allocs = testing.AllocsPerRun(100, func() {
		if bt.Get(k) == nil {
			t.Fatal("missing key")
		}
	})
	if allocs != 0 {
		t.Fatalf("BTree.Get allocated %.1f allocs/op, want 0", allocs)
	}
}

package kv

import (
	"sort"
	"sync"
)

// degree is the maximum number of keys per B+tree node. Interior nodes hold at
// most degree keys and degree+1 children; leaves hold at most degree keys.
const degree = 64

// BTree is an ordered in-memory B+tree mapping string keys to *Record values.
// Keys are expected to be order-preserving encodings (see package rel), so
// lexicographic byte order equals logical order.
//
// The tree structure is protected by a readers-writer mutex; record payloads
// are versioned independently (see Record), so structural latching is only
// needed for lookups, inserts and deletes of index entries, never for reading
// or writing record contents.
type BTree struct {
	mu   sync.RWMutex
	root *node
	size int
}

type node struct {
	leaf     bool
	keys     []string
	children []*node   // interior nodes only; len(children) == len(keys)+1
	values   []*Record // leaf nodes only
	next     *node     // leaf chain for ascending scans
	prev     *node     // leaf chain for descending scans
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &node{leaf: true}}
}

// Len returns the number of keys in the tree, including keys whose records are
// logically absent.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Get returns the record stored under key, or nil if the key is not indexed.
func (t *BTree) Get(key string) *Record {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.values[i]
	}
	return nil
}

// GetOrInsert returns the record stored under key, inserting rec if the key is
// not yet indexed. The boolean result reports whether rec was inserted (true)
// or an existing record was returned (false). It is the single atomic
// operation used by the OCC layer to claim a key for an insert.
func (t *BTree) GetOrInsert(key string, rec *Record) (*Record, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing := t.lookupLocked(key); existing != nil {
		return existing, false
	}
	t.insertLocked(key, rec)
	return rec, true
}

// Insert stores rec under key, replacing any existing record. It returns the
// previous record or nil.
func (t *BTree) Insert(key string, rec *Record) *Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		old := n.values[i]
		n.values[i] = rec
		return old
	}
	t.insertLocked(key, rec)
	return nil
}

// Delete removes the index entry for key and returns the record that was
// stored there, or nil if the key was not indexed. Most deletions in ReactDB
// are logical (the record is marked absent); physical removal is used by
// loaders and tests.
func (t *BTree) Delete(key string) *Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.deleteLocked(t.root, key)
	if rec != nil {
		t.size--
		if !t.root.leaf && len(t.root.keys) == 0 {
			t.root = t.root.children[0]
		}
	}
	return rec
}

// AscendRange calls fn for every key k with lo <= k < hi in ascending order.
// An empty hi means "no upper bound". Iteration stops early if fn returns
// false. The tree latch is held in read mode for the duration of the scan.
func (t *BTree) AscendRange(lo, hi string, fn func(key string, rec *Record) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, lo)]
	}
	i := sort.SearchStrings(n.keys, lo)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if hi != "" && n.keys[i] >= hi {
				return
			}
			if !fn(n.keys[i], n.values[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Ascend calls fn for every key in ascending order, stopping early if fn
// returns false.
func (t *BTree) Ascend(fn func(key string, rec *Record) bool) {
	t.AscendRange("", "", fn)
}

// DescendRange calls fn for every key k with lo <= k < hi in descending order,
// stopping early if fn returns false. An empty hi means "no upper bound".
func (t *BTree) DescendRange(lo, hi string, fn func(key string, rec *Record) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Find the right-most leaf containing keys < hi (or the right-most leaf
	// overall when hi is unbounded).
	n := t.root
	if hi == "" {
		for !n.leaf {
			n = n.children[len(n.children)-1]
		}
	} else {
		for !n.leaf {
			n = n.children[childIndex(n.keys, hi)]
		}
	}
	var i int
	if hi == "" {
		i = len(n.keys) - 1
	} else {
		i = sort.SearchStrings(n.keys, hi) - 1
	}
	for n != nil {
		for ; i >= 0; i-- {
			if n.keys[i] < lo {
				return
			}
			if !fn(n.keys[i], n.values[i]) {
				return
			}
		}
		n = n.prev
		if n != nil {
			i = len(n.keys) - 1
		}
	}
}

// lookupLocked finds the record for key; the caller holds the write latch.
func (t *BTree) lookupLocked(key string) *Record {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.values[i]
	}
	return nil
}

// insertLocked inserts a new key; the caller holds the write latch and has
// verified the key is not present.
func (t *BTree) insertLocked(key string, rec *Record) {
	if len(t.root.keys) >= degree {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key, rec)
	t.size++
}

func (t *BTree) insertNonFull(n *node, key string, rec *Record) {
	for !n.leaf {
		i := childIndex(n.keys, key)
		child := n.children[i]
		if len(child.keys) >= degree {
			t.splitChild(n, i)
			if key >= n.keys[i] {
				i++
			}
			child = n.children[i]
		}
		n = child
	}
	i := sort.SearchStrings(n.keys, key)
	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.values = append(n.values, nil)
	copy(n.values[i+1:], n.values[i:])
	n.values[i] = rec
}

// splitChild splits the full child at index i of parent n into two nodes.
func (t *BTree) splitChild(n *node, i int) {
	child := n.children[i]
	mid := len(child.keys) / 2
	var sep string
	right := &node{leaf: child.leaf}
	if child.leaf {
		// B+tree leaf split: the separator is copied up, both halves keep
		// their keys, and the leaf chain is stitched.
		right.keys = append(right.keys, child.keys[mid:]...)
		right.values = append(right.values, child.values[mid:]...)
		child.keys = child.keys[:mid:mid]
		child.values = child.values[:mid:mid]
		sep = right.keys[0]
		right.next = child.next
		if right.next != nil {
			right.next.prev = right
		}
		right.prev = child
		child.next = right
	} else {
		// Interior split: the separator moves up.
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// deleteLocked removes key from the subtree rooted at n and returns the
// removed record. It uses lazy rebalancing: underfull nodes are tolerated,
// which is acceptable for an in-memory OLTP store where physical deletes are
// rare (logical deletes just mark records absent).
func (t *BTree) deleteLocked(n *node, key string) *Record {
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return nil
	}
	rec := n.values[i]
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	return rec
}

// childIndex returns the index of the child of an interior node that covers
// key, given the node's separator keys.
func childIndex(keys []string, key string) int {
	return sort.Search(len(keys), func(i int) bool { return key < keys[i] })
}

package kv

import (
	"bytes"
	"encoding/binary"
	"sync"
)

// degree is the maximum number of keys per B+tree node. Interior nodes hold at
// most degree keys and degree+1 children; leaves hold at most degree keys.
const degree = 64

// BTree is an ordered in-memory B+tree mapping binary keys to *Record values.
// Keys are expected to be order-preserving encodings (see package rel), so
// lexicographic byte order equals logical order.
//
// Key bytes are copied on insert and never mutated or freed afterwards, so a
// key slice obtained from any lookup or scan remains valid (and immutable)
// after the tree latch is released — cursors exploit this to resume scans
// without copying their position.
//
// The tree structure is protected by a readers-writer mutex; record payloads
// are versioned independently (see Record), so structural latching is only
// needed for lookups, inserts and deletes of index entries, never for reading
// or writing record contents. A monotonically increasing epoch counter, bumped
// on every structural change (new key, physical delete), lets cursors detect
// that cached leaf positions may have been invalidated.
type BTree struct {
	mu    sync.RWMutex
	root  *node
	size  int
	epoch uint64
}

type node struct {
	leaf bool
	keys [][]byte
	// pfx caches the first 8 bytes of each key as a big-endian integer
	// ("poor man's normalized key"): binary search compares one register
	// per probe and touches the key bytes only on a prefix tie, which for
	// short order-preserving encodings is the exceptional case. pfx is
	// maintained strictly parallel to keys.
	pfx      []uint64
	children []*node   // interior nodes only; len(children) == len(keys)+1
	values   []*Record // leaf nodes only
	next     *node     // leaf chain for ascending scans
	prev     *node     // leaf chain for descending scans
}

// keyPrefix returns the first 8 bytes of k as a big-endian integer, zero-padded
// on the right for shorter keys. For keys a, b: keyPrefix(a) < keyPrefix(b)
// implies a < b; equal prefixes need a tie-break (see comparePastPrefix).
func keyPrefix(k []byte) uint64 {
	if len(k) >= 8 {
		return binary.BigEndian.Uint64(k)
	}
	var v uint64
	for _, b := range k {
		v = v<<8 | uint64(b)
	}
	return v << (8 * (8 - len(k)))
}

// comparePastPrefix orders two keys whose 8-byte prefixes compared equal.
// With zero padding, equal prefixes of two keys both <= 8 bytes long mean the
// longer is the shorter extended by NUL bytes, so length order is byte order.
func comparePastPrefix(a, b []byte) int {
	if len(a) <= 8 && len(b) <= 8 {
		return len(a) - len(b)
	}
	return bytes.Compare(a, b)
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &node{leaf: true}}
}

// Len returns the number of keys in the tree, including keys whose records are
// logically absent.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Epoch returns the structural version of the tree. It changes whenever a key
// is inserted or physically deleted; replacing the record under an existing
// key does not change it.
func (t *BTree) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// lowerBound returns the first index i in n.keys with n.keys[i] >= key.
// Hand-rolled (rather than sort.Search) to keep the hot path closure-free;
// kpfx must be keyPrefix(key).
func (n *node) lowerBound(key []byte, kpfx uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		var less bool
		if p := n.pfx[mid]; p != kpfx {
			less = p < kpfx
		} else {
			less = comparePastPrefix(n.keys[mid], key) < 0
		}
		if less {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index i in n.keys with n.keys[i] > key. For an
// interior node's separator keys this is the index of the child covering key.
// kpfx must be keyPrefix(key).
func (n *node) upperBound(key []byte, kpfx uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		var le bool
		if p := n.pfx[mid]; p != kpfx {
			le = p < kpfx
		} else {
			le = comparePastPrefix(n.keys[mid], key) <= 0
		}
		if le {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafFor descends to the leaf covering key; kpfx must be keyPrefix(key).
// Caller holds the latch.
func (t *BTree) leafFor(key []byte, kpfx uint64) *node {
	n := t.root
	for !n.leaf {
		n = n.children[n.upperBound(key, kpfx)]
	}
	return n
}

// Get returns the record stored under key, or nil if the key is not indexed.
func (t *BTree) Get(key []byte) *Record {
	kpfx := keyPrefix(key)
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.leafFor(key, kpfx)
	i := n.lowerBound(key, kpfx)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.values[i]
	}
	return nil
}

// GetOrInsert returns the record stored under key, inserting rec if the key is
// not yet indexed. The boolean result reports whether rec was inserted (true)
// or an existing record was returned (false). It is the single atomic
// operation used by the OCC layer to claim a key for an insert. The key bytes
// are copied, so the caller may reuse its buffer.
func (t *BTree) GetOrInsert(key []byte, rec *Record) (*Record, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing := t.lookupLocked(key); existing != nil {
		return existing, false
	}
	t.insertLocked(key, rec)
	return rec, true
}

// Insert stores rec under key, replacing any existing record. It returns the
// previous record or nil. The key bytes are copied on a fresh insert, so the
// caller may reuse its buffer.
func (t *BTree) Insert(key []byte, rec *Record) *Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	kpfx := keyPrefix(key)
	n := t.leafFor(key, kpfx)
	i := n.lowerBound(key, kpfx)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		old := n.values[i]
		n.values[i] = rec
		return old
	}
	t.insertLocked(key, rec)
	return nil
}

// Delete removes the index entry for key and returns the record that was
// stored there, or nil if the key was not indexed. Most deletions in ReactDB
// are logical (the record is marked absent); physical removal is used by
// loaders, secondary-index maintenance and tests.
func (t *BTree) Delete(key []byte) *Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.deleteLocked(t.root, key)
	if rec != nil {
		t.size--
		t.epoch++
		if !t.root.leaf && len(t.root.keys) == 0 {
			t.root = t.root.children[0]
		}
	}
	return rec
}

// AscendRange calls fn for every key k with lo <= k < hi in ascending order.
// A nil/empty hi means "no upper bound". Iteration stops early if fn returns
// false. The tree latch is held in read mode for the duration of the scan; the
// key slices passed to fn remain valid after it is released.
func (t *BTree) AscendRange(lo, hi []byte, fn func(key []byte, rec *Record) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	lpfx := keyPrefix(lo)
	n := t.leafFor(lo, lpfx)
	i := n.lowerBound(lo, lpfx)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if len(hi) > 0 && bytes.Compare(n.keys[i], hi) >= 0 {
				return
			}
			if !fn(n.keys[i], n.values[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Ascend calls fn for every key in ascending order, stopping early if fn
// returns false.
func (t *BTree) Ascend(fn func(key []byte, rec *Record) bool) {
	t.AscendRange(nil, nil, fn)
}

// AscendPrefix calls fn for every key that starts with prefix, in ascending
// order, stopping early if fn returns false. Because keys sharing a prefix
// form a contiguous range, the scan seeks to the prefix and stops at the first
// key that no longer starts with it — no successor key is materialized.
func (t *BTree) AscendPrefix(prefix []byte, fn func(key []byte, rec *Record) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ppfx := keyPrefix(prefix)
	n := t.leafFor(prefix, ppfx)
	i := n.lowerBound(prefix, ppfx)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !bytes.HasPrefix(n.keys[i], prefix) {
				return
			}
			if !fn(n.keys[i], n.values[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// DescendRange calls fn for every key k with lo <= k < hi in descending order,
// stopping early if fn returns false. A nil/empty hi means "no upper bound".
func (t *BTree) DescendRange(lo, hi []byte, fn func(key []byte, rec *Record) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Find the right-most leaf containing keys < hi (or the right-most leaf
	// overall when hi is unbounded).
	n := t.root
	hpfx := keyPrefix(hi)
	if len(hi) == 0 {
		for !n.leaf {
			n = n.children[len(n.children)-1]
		}
	} else {
		for !n.leaf {
			n = n.children[n.upperBound(hi, hpfx)]
		}
	}
	var i int
	if len(hi) == 0 {
		i = len(n.keys) - 1
	} else {
		i = n.lowerBound(hi, hpfx) - 1
	}
	for n != nil {
		for ; i >= 0; i-- {
			if bytes.Compare(n.keys[i], lo) < 0 {
				return
			}
			if !fn(n.keys[i], n.values[i]) {
				return
			}
		}
		n = n.prev
		if n != nil {
			i = len(n.keys) - 1
		}
	}
}

// lookupLocked finds the record for key; the caller holds the write latch.
func (t *BTree) lookupLocked(key []byte) *Record {
	kpfx := keyPrefix(key)
	n := t.leafFor(key, kpfx)
	i := n.lowerBound(key, kpfx)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.values[i]
	}
	return nil
}

// insertLocked inserts a new key; the caller holds the write latch and has
// verified the key is not present. The key bytes are copied into tree-owned
// storage that is never subsequently mutated.
func (t *BTree) insertLocked(key []byte, rec *Record) {
	owned := append(make([]byte, 0, len(key)), key...)
	if len(t.root.keys) >= degree {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, owned, rec)
	t.size++
	t.epoch++
}

func (t *BTree) insertNonFull(n *node, key []byte, rec *Record) {
	kpfx := keyPrefix(key)
	for !n.leaf {
		i := n.upperBound(key, kpfx)
		child := n.children[i]
		if len(child.keys) >= degree {
			t.splitChild(n, i)
			if bytes.Compare(key, n.keys[i]) >= 0 {
				i++
			}
			child = n.children[i]
		}
		n = child
	}
	i := n.lowerBound(key, kpfx)
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.pfx = append(n.pfx, 0)
	copy(n.pfx[i+1:], n.pfx[i:])
	n.pfx[i] = kpfx
	n.values = append(n.values, nil)
	copy(n.values[i+1:], n.values[i:])
	n.values[i] = rec
}

// splitChild splits the full child at index i of parent n into two nodes.
func (t *BTree) splitChild(n *node, i int) {
	child := n.children[i]
	mid := len(child.keys) / 2
	var sep []byte
	var sepPfx uint64
	right := &node{leaf: child.leaf}
	if child.leaf {
		// B+tree leaf split: the separator is copied up, both halves keep
		// their keys, and the leaf chain is stitched.
		right.keys = append(right.keys, child.keys[mid:]...)
		right.pfx = append(right.pfx, child.pfx[mid:]...)
		right.values = append(right.values, child.values[mid:]...)
		child.keys = child.keys[:mid:mid]
		child.pfx = child.pfx[:mid:mid]
		child.values = child.values[:mid:mid]
		sep = right.keys[0]
		sepPfx = right.pfx[0]
		right.next = child.next
		if right.next != nil {
			right.next.prev = right
		}
		right.prev = child
		child.next = right
	} else {
		// Interior split: the separator moves up.
		sep = child.keys[mid]
		sepPfx = child.pfx[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.pfx = append(right.pfx, child.pfx[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid:mid]
		child.pfx = child.pfx[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.pfx = append(n.pfx, 0)
	copy(n.pfx[i+1:], n.pfx[i:])
	n.pfx[i] = sepPfx
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// deleteLocked removes key from the subtree rooted at n and returns the
// removed record. It uses lazy rebalancing: underfull nodes are tolerated,
// which is acceptable for an in-memory OLTP store where physical deletes are
// rare (logical deletes just mark records absent).
func (t *BTree) deleteLocked(n *node, key []byte) *Record {
	kpfx := keyPrefix(key)
	for !n.leaf {
		n = n.children[n.upperBound(key, kpfx)]
	}
	i := n.lowerBound(key, kpfx)
	if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
		return nil
	}
	rec := n.values[i]
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.pfx = append(n.pfx[:i], n.pfx[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	return rec
}

package kv

import (
	"sync"
	"testing"
)

func TestNewRecordIsAbsent(t *testing.T) {
	r := NewRecord()
	if !r.Absent() {
		t.Fatalf("new record should be absent")
	}
	if r.Locked() {
		t.Fatalf("new record should not be locked")
	}
	if _, _, present := r.StableRead(); present {
		t.Fatalf("absent record must not be readable")
	}
}

func TestNewCommittedRecord(t *testing.T) {
	r := NewCommittedRecord([]byte("hello"), 42)
	data, tid, present := r.StableRead()
	if !present {
		t.Fatalf("committed record should be present")
	}
	if string(data) != "hello" {
		t.Fatalf("data = %q, want %q", data, "hello")
	}
	if tid != 42 {
		t.Fatalf("tid = %d, want 42", tid)
	}
}

func TestLockUnlock(t *testing.T) {
	r := NewCommittedRecord([]byte("v"), 1)
	if !r.TryLock() {
		t.Fatalf("TryLock on unlocked record failed")
	}
	if r.TryLock() {
		t.Fatalf("TryLock on locked record succeeded")
	}
	if !r.Locked() {
		t.Fatalf("record should report locked")
	}
	r.Unlock()
	if r.Locked() {
		t.Fatalf("record should report unlocked after Unlock")
	}
	if r.TID() != 1 {
		t.Fatalf("plain Unlock must not change the version, got %d", r.TID())
	}
}

func TestUnlockWithTIDUpdatesVersionAndVisibility(t *testing.T) {
	r := NewRecord()
	r.Lock()
	r.SetData([]byte("first"))
	r.UnlockWithTID(7, false)
	data, tid, present := r.StableRead()
	if !present || string(data) != "first" || tid != 7 {
		t.Fatalf("got (%q, %d, %v), want (first, 7, true)", data, tid, present)
	}

	// Logical delete: mark absent with a newer version.
	r.Lock()
	r.UnlockWithTID(9, true)
	if _, tid, present := r.StableRead(); present || tid != 9 {
		t.Fatalf("deleted record: present=%v tid=%d, want absent at tid 9", present, tid)
	}
}

func TestValidateVersion(t *testing.T) {
	r := NewCommittedRecord([]byte("v"), 5)
	if !r.ValidateVersion(5, false) {
		t.Fatalf("validation should succeed on unchanged version")
	}
	if r.ValidateVersion(4, false) {
		t.Fatalf("validation should fail on changed version")
	}
	r.Lock()
	if r.ValidateVersion(5, false) {
		t.Fatalf("validation should fail when another txn holds the latch")
	}
	if !r.ValidateVersion(5, true) {
		t.Fatalf("validation should succeed when we hold the latch ourselves")
	}
	r.Unlock()
}

func TestStableReadNeverObservesTorn(t *testing.T) {
	// Writers alternately install ("a", 2k) and ("b", 2k+1); readers must never
	// observe a mismatched pair.
	r := NewCommittedRecord([]byte("a"), 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tid := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tid++
			r.Lock()
			if tid%2 == 0 {
				r.SetData([]byte("a"))
			} else {
				r.SetData([]byte("b"))
			}
			r.UnlockWithTID(tid, false)
		}
	}()
	for i := 0; i < 20000; i++ {
		data, tid, present := r.StableRead()
		if !present {
			t.Fatalf("record unexpectedly absent")
		}
		want := "a"
		if tid%2 == 1 {
			want = "b"
		}
		if string(data) != want {
			t.Fatalf("torn read: tid=%d data=%q", tid, data)
		}
	}
	close(stop)
	wg.Wait()
}

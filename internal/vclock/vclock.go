// Package vclock implements the virtual-core layer that substitutes for the
// paper's multi-core hardware (see DESIGN.md §5). The paper evaluates ReactDB
// on machines with 8 and 32 hardware threads and pins each transaction
// executor to its own core; this reproduction may run on a host with a single
// physical CPU, so processing costs are modeled in virtual time:
//
//   - every transaction executor owns a Core, a token that serializes
//     "CPU-bound" work on that executor;
//   - Core.Work sleeps while holding the token, so simulated computation
//     occupies exactly one virtual core without consuming the host CPU;
//   - while a request blocks on a remote sub-transaction it releases the
//     token, modeling the cooperative multitasking of §3.2.3 (a blocked
//     thread hands the core to another thread draining the request queue);
//   - cross-container communication costs Cs (send) and Cr (receive), which
//     on the paper's hardware stem from cross-core thread switching, are
//     injected as configurable delays.
//
// With this layer the asynchronicity, queueing and affinity effects the paper
// measures are expressed in wall-clock time even on a single-core host;
// absolute magnitudes differ (sleep granularity is ~0.1 ms), which
// EXPERIMENTS.md documents per experiment.
package vclock

import (
	"runtime"
	"time"
)

// Core is a virtual CPU core: a binary token serializing processing on one
// transaction executor.
type Core struct {
	sem chan struct{}
}

// NewCore returns an idle virtual core.
func NewCore() *Core {
	return &Core{sem: make(chan struct{}, 1)}
}

// Acquire takes the core, blocking until it is free.
func (c *Core) Acquire() { c.sem <- struct{}{} }

// Release frees the core.
func (c *Core) Release() { <-c.sem }

// TryAcquire takes the core if it is free and reports whether it did.
func (c *Core) TryAcquire() bool {
	select {
	case c.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Busy reports whether the core is currently held.
func (c *Core) Busy() bool { return len(c.sem) == 1 }

// yieldUntil waits for the deadline by repeatedly yielding the processor to
// other goroutines. Unlike time.Sleep it has sub-microsecond resolution (the
// host's sleep granularity can be ~1ms), and unlike a hard busy-spin it lets
// work belonging to other virtual cores progress on a single-CPU host, so
// delays on different executors genuinely overlap in wall-clock time.
func yieldUntil(deadline time.Time) {
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Work simulates d of CPU-bound processing on the calling goroutine's virtual
// core. The caller must already hold the core; the wall-clock duration is d
// regardless of how many other virtual cores are working concurrently, which
// is exactly the multi-core overlap the paper's hardware provides. Long
// durations mostly sleep to spare the host CPU; the tail is yielded away for
// accuracy.
func Work(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > 2*time.Millisecond {
		time.Sleep(d - 1500*time.Microsecond)
	}
	yieldUntil(deadline)
}

// Spin waits for d with microsecond resolution while holding the calling
// goroutine's virtual core. The engine uses it for the small communication and
// bookkeeping costs (Cs, Cr, affinity misses, per-request processing) charged
// on a caller's core.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	yieldUntil(time.Now().Add(d))
}

// Costs are the communication and locality cost parameters of a deployment.
// They correspond to the cost-model parameters of the paper's Figure 3 (Cs,
// Cr) and to the cache-affinity penalty its shared-everything experiments
// expose implicitly.
type Costs struct {
	// Send is Cs(k, k'): the cost charged on the caller's executor to send a
	// sub-transaction invocation to a reactor in a different container.
	Send time.Duration
	// Receive is Cr(k', k): the cost charged on the caller's executor to
	// receive a sub-transaction result from a different container. The paper
	// observes Cr > Cs because the receive path involves cross-core thread
	// switching.
	Receive time.Duration
	// AffinityMiss is the penalty charged when an executor processes a
	// transaction for a reactor it did not process last, modeling the cache
	// locality an affinity router preserves and a round-robin router destroys.
	AffinityMiss time.Duration
	// Processing is a fixed per-(sub-)transaction processing cost added on the
	// executing reactor's core, modeling the per-transaction CPU work of the
	// paper's hardware when the real Go logic is too cheap to register.
	Processing time.Duration
	// LogWrite is the modeled cost of making one commit durable (a log-device
	// write). Without group commit it is charged on the committing executor's
	// core once per transaction; with group commit the container's group
	// committer charges it once per batch, which is the amortization real
	// group commit buys. Zero disables the cost (the seed's behaviour: no
	// durability layer).
	LogWrite time.Duration
}

// DefaultExperimentCosts are the cost parameters used by the experiment
// drivers. They keep the Cr > Cs asymmetry the paper reports and are large
// enough to be resolvable with sleep-based virtual time.
func DefaultExperimentCosts() Costs {
	return Costs{
		Send:         40 * time.Microsecond,
		Receive:      80 * time.Microsecond,
		AffinityMiss: 60 * time.Microsecond,
		Processing:   50 * time.Microsecond,
	}
}

package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestCoreMutualExclusion(t *testing.T) {
	c := NewCore()
	c.Acquire()
	if !c.Busy() {
		t.Fatalf("core should be busy while held")
	}
	if c.TryAcquire() {
		t.Fatalf("TryAcquire should fail while the core is held")
	}
	c.Release()
	if c.Busy() {
		t.Fatalf("core should be idle after release")
	}
	if !c.TryAcquire() {
		t.Fatalf("TryAcquire should succeed on an idle core")
	}
	c.Release()
}

func TestCoreSerializesHolders(t *testing.T) {
	c := NewCore()
	const holders = 8
	var inside, maxInside int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < holders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Acquire()
			mu.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inside--
			mu.Unlock()
			c.Release()
		}()
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("core admitted %d concurrent holders, want 1", maxInside)
	}
}

func TestWorkSleepsApproximately(t *testing.T) {
	start := time.Now()
	Work(5 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("Work returned after %v, want >= 5ms", elapsed)
	}
	// Zero and negative durations return immediately.
	start = time.Now()
	Work(0)
	Work(-time.Second)
	if elapsed := time.Since(start); elapsed > time.Millisecond {
		t.Fatalf("Work(0) took %v", elapsed)
	}
}

func TestSpinWaitsApproximately(t *testing.T) {
	start := time.Now()
	Spin(200 * time.Microsecond)
	elapsed := time.Since(start)
	if elapsed < 200*time.Microsecond {
		t.Fatalf("Spin returned after %v, want >= 200µs", elapsed)
	}
	if elapsed > 50*time.Millisecond {
		t.Fatalf("Spin took far too long: %v", elapsed)
	}
	start = time.Now()
	Spin(0)
	Spin(-time.Second)
	if time.Since(start) > time.Millisecond {
		t.Fatalf("Spin of non-positive duration should return immediately")
	}
}

func TestDefaultExperimentCostsAsymmetry(t *testing.T) {
	c := DefaultExperimentCosts()
	if c.Receive <= c.Send {
		t.Fatalf("paper reports Cr > Cs; defaults must preserve the asymmetry")
	}
	if c.Send <= 0 || c.Processing <= 0 || c.AffinityMiss <= 0 {
		t.Fatalf("default costs must be positive")
	}
}
